package flight

import (
	"encoding/json"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"writeavoid/internal/machine"
)

// EventRecord is one ring event decoded for the wire: the kind named, the
// interned span label carried through, every machine.Event field preserved
// so a decoded tail can be compared bit for bit against the raw stream.
type EventRecord struct {
	Seq    int64  `json:"seq"`
	Kind   string `json:"kind"`
	Arg    int    `json:"arg,omitempty"`
	Words  int64  `json:"words,omitempty"`
	Addr   uint64 `json:"addr,omitempty"`
	Write  bool   `json:"write,omitempty"`
	Remote bool   `json:"remote,omitempty"`
	Label  string `json:"label,omitempty"`
}

// Decode renders one raw event as the record a captured window holds; tests
// decode reference-engine tails through the same function to pin
// bit-identity.
func Decode(seq int64, e machine.Event) EventRecord {
	return EventRecord{
		Seq:    seq,
		Kind:   e.Kind.String(),
		Arg:    e.Arg,
		Words:  e.Words,
		Addr:   e.Addr,
		Write:  e.Write,
		Remote: e.Remote,
		Label:  e.Label,
	}
}

// PhaseDelta is one closed phase: its label, its counter-bearing event
// count, and the exact Snapshot delta of the events recorded under it —
// with matching marks, the very value the monitor's phase checks evaluated.
type PhaseDelta struct {
	Kernel string           `json:"kernel"`
	Events int64            `json:"events"`
	Delta  machine.Snapshot `json:"delta"`
}

// Window is one immutable freeze of a recorder's state: the decoded event
// tail (oldest first), the open span stack, the phase context, and the drop
// accounting. Windows are plain data; nothing aliases the live ring.
type Window struct {
	Reason string `json:"reason"`
	// Phase is the running phase label at capture; Closed the last phase
	// that closed with events (nil before the first).
	Phase  string      `json:"phase,omitempty"`
	Closed *PhaseDelta `json:"closed,omitempty"`
	// SpanStack lists the spans open at capture, outermost first.
	SpanStack []string `json:"spanStack,omitempty"`
	// Events is the ring tail; FirstSeq is Events[0]'s sequence number,
	// TotalEvents the events ever recorded, Dropped how many were
	// overwritten before this capture could freeze them.
	Events      []EventRecord `json:"events"`
	FirstSeq    int64         `json:"firstSeq"`
	TotalEvents int64         `json:"totalEvents"`
	Dropped     int64         `json:"dropped"`
	// Cumulative is the recorder's whole-run snapshot at capture.
	Cumulative machine.Snapshot `json:"cumulative"`
}

// Superstep returns the innermost open span that looks like a distributed
// superstep label ("step 3" — the interned labels pmm and plu ranks begin
// each barrier-to-barrier step with), falling back to the last such Begin
// in the event window when the stack has none (a rank captured between
// steps). This is how per-rank windows of one machine are correlated: every
// rank at the same barrier generation reports the same label.
func (w *Window) Superstep() (string, bool) {
	isStep := func(label string) bool { return strings.HasPrefix(label, "step ") }
	for i := len(w.SpanStack) - 1; i >= 0; i-- {
		if isStep(w.SpanStack[i]) {
			return w.SpanStack[i], true
		}
	}
	for i := len(w.Events) - 1; i >= 0; i-- {
		if e := w.Events[i]; e.Kind == "Begin" && isStep(e.Label) {
			return e.Label, true
		}
	}
	return "", false
}

// ViolationInfo is the violation metadata a bundle carries — the same JSON
// shape as monitor.Violation (flight sits below monitor in the dependency
// order, so the fields are mirrored rather than imported).
type ViolationInfo struct {
	ID       int64   `json:"id"`
	Check    string  `json:"check"`
	Kernel   string  `json:"kernel"`
	Expected float64 `json:"expected"`
	Observed float64 `json:"observed"`
	Slack    float64 `json:"slack"`
	Detail   string  `json:"detail,omitempty"`
}

// RankWindow is one distributed rank's frozen ring inside a bundle.
type RankWindow struct {
	Run  string `json:"run"`
	Rank int    `json:"rank"`
	// Superstep is the rank's correlation label at capture (see
	// Window.Superstep); empty when the rank ran no superstep spans.
	Superstep string  `json:"superstep,omitempty"`
	Window    *Window `json:"window"`
}

// Bundle is one immutable forensic capture: why it was taken, the main
// window, and — for violations raised against a distributed run — every
// rank's window correlated by superstep.
type Bundle struct {
	// Seq is the bundle's own monotonic number, assigned by whoever stores
	// it (the monitor server); 0 until then.
	Seq        int64          `json:"seq,omitempty"`
	Reason     string         `json:"reason"` // "violation" | "manual"
	CapturedAt time.Time      `json:"capturedAt"`
	Violation  *ViolationInfo `json:"violation,omitempty"`
	Window     *Window        `json:"window"`
	Ranks      []RankWindow   `json:"ranks,omitempty"`
}

// WriteJSON serializes the bundle, indented, trailing newline — the dump
// file and /violations/{id}/dump format.
func (b *Bundle) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// Group is a set of per-rank flight recorders for one distributed run; its
// Recorder method matches the dist.Observer signature, the same shape as
// profile.ProcGroup.
type Group struct {
	Name string

	capacity int
	levels   []machine.Level

	mu   sync.Mutex
	recs map[int]*Recorder
}

// NewGroup builds a group whose rank recorders use the given ring capacity
// and seed geometry.
func NewGroup(name string, capacity int, levels []machine.Level) *Group {
	return &Group{Name: name, capacity: capacity, levels: levels, recs: map[int]*Recorder{}}
}

// Recorder returns rank's flight recorder, creating it on first use. Safe
// for concurrent use (dist ranks construct concurrently).
func (g *Group) Recorder(rank int) machine.Recorder {
	g.mu.Lock()
	defer g.mu.Unlock()
	r, ok := g.recs[rank]
	if !ok {
		r = New(g.capacity, g.levels)
		g.recs[rank] = r
	}
	return r
}

// Ranks returns the ranks with recorders, sorted.
func (g *Group) Ranks() []int {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]int, 0, len(g.recs))
	for r := range g.recs {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// Proc returns rank's recorder, or nil if that rank never recorded.
func (g *Group) Proc(rank int) *Recorder {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.recs[rank]
}

// Windows freezes every rank's ring (Peek semantics: no hierarchy sync —
// dist ranks flush at barriers and at run end, so a capture between
// barriers is at barrier granularity) and returns them with their superstep
// correlation labels, sorted by rank.
func (g *Group) Windows(reason string) []RankWindow {
	out := make([]RankWindow, 0, len(g.recs))
	for _, rank := range g.Ranks() {
		w := g.Proc(rank).Peek(reason)
		rw := RankWindow{Run: g.Name, Rank: rank, Window: w}
		rw.Superstep, _ = w.Superstep()
		out = append(out, rw)
	}
	return out
}
