package flight

import (
	"fmt"
	"io"

	"writeavoid/internal/profile"
)

// This file exports a forensic bundle as Chrome trace-event JSON through
// the existing profile.TraceBuilder, so a single violation opens in
// Perfetto: the main window becomes pid 0 / tid 0, each rank window its own
// tid under the run's pid, with the event-count clock the repo's traces
// already use (1 event = 1µs — sequence numbers ARE timestamps, so the
// window's µs axis is its ring position).
//
// Span reconstruction from a truncated tail: the window may hold an EvEnd
// whose EvBegin predates it, and spans open at capture have no EvEnd yet.
// Both are rendered honestly — pre-window closes become "(pre-window)"
// spans clipped to the window start, still-open spans are closed at the
// capture timestamp — so the exported B/E pairs always balance and
// profile.ValidateTraceEvent accepts every bundle.

// WriteTrace renders the bundle as a complete Chrome trace.
func (b *Bundle) WriteTrace(w io.Writer) error {
	tb := profile.NewTraceBuilder()
	title := "flight: " + b.Reason
	if b.Violation != nil {
		title = fmt.Sprintf("flight: %s %s[%s]", b.Reason, b.Violation.Check, b.Violation.Kernel)
	}
	tb.AddProcessName(0, title)
	addWindow(tb, 0, 0, "window", b.Window, b.Violation)
	runPid := 0
	lastRun := ""
	for _, rw := range b.Ranks {
		if rw.Run != lastRun {
			runPid++
			lastRun = rw.Run
			tb.AddProcessName(runPid, "flight ranks: "+rw.Run)
		}
		name := fmt.Sprintf("p%d", rw.Rank)
		if rw.Superstep != "" {
			name += " @" + rw.Superstep
		}
		addWindow(tb, runPid, rw.Rank, name, rw.Window, nil)
	}
	return tb.Write(w)
}

// addWindow renders one window as thread (pid, tid).
func addWindow(tb *profile.TraceBuilder, pid, tid int, name string, w *Window, v *ViolationInfo) {
	tb.AddThreadName(pid, tid, name)
	if len(w.Events) == 0 {
		// An empty window still validates: emit only the capture marker.
		tb.AddInstant(pid, tid, "capture", float64(w.TotalEvents), map[string]any{"reason": w.Reason})
		return
	}
	startTs := float64(w.FirstSeq)
	endTs := float64(w.FirstSeq + int64(len(w.Events)))
	type open struct {
		label string
		ts    float64
	}
	var stack []open
	// Per-interface cumulative words within the window drive counter tracks.
	type tally struct{ load, store int64 }
	words := map[int]*tally{}
	for _, e := range w.Events {
		ts := float64(e.Seq)
		switch e.Kind {
		case "Begin":
			stack = append(stack, open{label: e.Label, ts: ts})
		case "End":
			if len(stack) > 0 {
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				tb.AddSpan(pid, tid, top.label, top.ts, ts, nil)
			} else {
				// The matching Begin was overwritten: clip to the window.
				tb.AddSpan(pid, tid, "(pre-window)", startTs, ts, nil)
			}
		case "Load", "Store":
			t := words[e.Arg]
			if t == nil {
				t = &tally{}
				words[e.Arg] = t
			}
			if e.Kind == "Load" {
				t.load += e.Words
			} else {
				t.store += e.Words
			}
			tb.AddCounter(pid, fmt.Sprintf("%s if%d", name, e.Arg), ts, map[string]any{
				"loadWords":  t.load,
				"storeWords": t.store,
			})
		}
	}
	// Spans still open at capture close at the window end; emit outermost
	// first so Perfetto nests them the way the stack did.
	for _, o := range stack {
		tb.AddSpan(pid, tid, o.label, o.ts, endTs, nil)
	}
	args := map[string]any{"reason": w.Reason, "dropped": w.Dropped, "totalEvents": w.TotalEvents}
	if v != nil {
		args["check"] = v.Check
		args["kernel"] = v.Kernel
		args["expected"] = v.Expected
		args["observed"] = v.Observed
		args["violationId"] = v.ID
	}
	tb.AddInstant(pid, tid, "capture", endTs, args)
}
