// Package flight is the black-box layer of the event engine: an always-on,
// allocation-free recorder that keeps the tail of the event stream — the
// last N events, the open span stack, the running phase delta — in a
// fixed-capacity ring, so that when a conformance check fails (or an
// operator asks) the machine's recent history can be frozen into an
// immutable forensic bundle instead of being gone with the counters.
//
// The Recorder rides the batched engine natively: RecordBatch copies a
// block into the ring under one lock acquisition, span marks maintain the
// stack in place, and the counter-bearing events fold into a
// machine.GrowingCounters exactly the way monitor.Monitor folds them — so
// the phase delta a frozen bundle carries is word-for-word the delta the
// monitor's check evaluated, provided Phase is driven with the same marks
// (experiments.Mark does both, flight first). Steady state allocates
// nothing per event: the ring storage, the stack backing array, and the
// counters are all preallocated or grow-once.
//
// Exactness invariants, pinned by the package tests:
//
//   - The ring's decoded tail is bit-identical to the trailing events the
//     per-event reference engine (batch capacity 1) delivers to an
//     identically-interested recorder. Batching never changes which events
//     the black box holds, only when they arrived.
//   - The last closed phase's Delta equals cum.Sub(prev) over exactly the
//     events recorded under that phase label — the same telescoping-group
//     arithmetic (and, with the default touchless interest, the same event
//     set) as the monitor's check input.
//   - Capture never loses the drop count: TotalEvents - len(Events) events
//     were overwritten, and the bundle says so rather than pretending the
//     window is complete.
package flight

import (
	"sync"

	"writeavoid/internal/machine"
)

// DefaultEvents is the ring capacity New uses for values < 1: enough tail
// to hold several batches of context around a violation while staying a few
// tens of KB per hierarchy.
const DefaultEvents = 1024

// Recorder is the flight recorder: a machine.Recorder/BatchRecorder keeping
// the last N events in a ring plus the open span stack and the running
// phase context. It is internally locked — smp.RunParallel delivers batches
// from many goroutines at once, and captures may come from HTTP handlers —
// with one lock round-trip per batch, not per event. Like monitor.Monitor
// it embeds a dirty-source set that only the run goroutine drives
// (Phase/Capture); concurrent readers use Peek, which accepts batch
// granularity instead of syncing.
type Recorder struct {
	// sources tracks hierarchies holding buffered events for this recorder;
	// driven only from the run goroutine (Phase, Capture).
	sources machine.Sources

	mu    sync.Mutex
	ring  []machine.Event // fixed capacity len(ring) == cap
	pos   int             // next write index
	n     int             // occupancy, <= len(ring)
	seq   int64           // events ever appended (ring sequence numbers)
	stack []string        // open span labels, innermost last

	g      *machine.GrowingCounters
	prev   machine.Snapshot // basis of the running phase delta
	phase  string           // running phase label
	events int64            // counter-bearing events in the running phase
	closed *PhaseDelta      // last closed event-carrying phase

	captures int64
	touch    bool
}

// Option configures a Recorder at construction.
type Option func(*Recorder)

// WithTouch opts the recorder into the dense per-element EvTouch/EvRange
// stream. Off by default: the black box then sees exactly the event set the
// monitor sees, which keeps phase deltas bit-identical to the monitor's
// check inputs (touch tallies included would differ — the monitor never
// subscribes).
func WithTouch() Option { return func(r *Recorder) { r.touch = true } }

// New builds a flight recorder whose ring holds capacity events (values < 1
// get DefaultEvents), seeded with the given counter geometry (nil grows on
// demand like the monitor's).
func New(capacity int, levels []machine.Level, opts ...Option) *Recorder {
	if capacity < 1 {
		capacity = DefaultEvents
	}
	r := &Recorder{
		ring:  make([]machine.Event, capacity),
		stack: make([]string, 0, 16),
		g:     machine.NewGrowingCounters(levels),
	}
	r.prev = r.g.Snapshot()
	for _, o := range opts {
		o(r)
	}
	return r
}

// WantsSpans opts into EvBegin/EvEnd so the ring holds the marks and the
// stack tracks them.
func (r *Recorder) WantsSpans() bool { return true }

// WantsTouch reports the configured touch interest (see WithTouch).
func (r *Recorder) WantsTouch() bool { return r.touch }

// SourceDirty and SourceClean track hierarchies with buffered events (run
// goroutine only; see the sources field).
func (r *Recorder) SourceDirty(f machine.Flusher) { r.sources.SourceDirty(f) }
func (r *Recorder) SourceClean(f machine.Flusher) { r.sources.SourceClean(f) }

// Record appends one event.
func (r *Recorder) Record(e machine.Event) {
	r.mu.Lock()
	r.record(e)
	r.mu.Unlock()
}

// RecordBatch appends a block of events under one lock acquisition — the
// steady-state fast path: a ring slot copy, a stack push/pop, and a counter
// fold per event, no allocation.
func (r *Recorder) RecordBatch(events []machine.Event) {
	r.mu.Lock()
	for i := range events {
		r.record(events[i])
	}
	r.mu.Unlock()
}

// record is the per-event body; callers hold mu.
func (r *Recorder) record(e machine.Event) {
	r.ring[r.pos] = e
	r.pos++
	if r.pos == len(r.ring) {
		r.pos = 0
	}
	if r.n < len(r.ring) {
		r.n++
	}
	r.seq++
	switch e.Kind {
	case machine.EvBegin:
		r.stack = append(r.stack, e.Label)
	case machine.EvEnd:
		// Pop-if-nonempty: under concurrent direct delivery (smp workers
		// recording straight into a shared flight recorder) cross-worker
		// interleaving makes the stack best-effort; it must stay bounded
		// and race-free, not meaningful.
		if len(r.stack) > 0 {
			r.stack = r.stack[:len(r.stack)-1]
		}
	case machine.EvRange:
		// annotation only: in the ring, not in the counters
	default:
		r.g.Record(e)
		r.events++
	}
}

// Phase closes the running phase and labels subsequent events with name,
// mirroring monitor.Monitor.Phase exactly: buffered events are synced in
// first, and a phase that carried no counter-bearing events closes silently
// (the last closed delta keeps pointing at the last phase that did). Drive
// it with the same marks as the monitor, flight first, and the last closed
// delta is always the delta the monitor is about to evaluate. Run goroutine
// only.
func (r *Recorder) Phase(name string) {
	r.sources.Sync()
	r.mu.Lock()
	r.closePhaseLocked()
	r.phase = name
	r.mu.Unlock()
}

func (r *Recorder) closePhaseLocked() {
	if r.events == 0 {
		return
	}
	cum := r.g.Snapshot()
	r.closed = &PhaseDelta{
		Kernel: r.phase,
		Events: r.events,
		Delta:  cum.Sub(r.prev),
	}
	r.prev = cum
	r.events = 0
}

// Capture syncs buffered events in and freezes the current ring state into
// an immutable Window. Run goroutine only (it syncs); concurrent readers
// use Peek.
func (r *Recorder) Capture(reason string) *Window {
	r.sources.Sync()
	return r.Peek(reason)
}

// Peek freezes the ring state without syncing hierarchy buffers: safe from
// any goroutine, at batch rather than event granularity (the same
// momentary-snapshot semantics the monitor's live reads have).
func (r *Recorder) Peek(reason string) *Window {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.captures++
	w := &Window{
		Reason:      reason,
		Phase:       r.phase,
		SpanStack:   append([]string(nil), r.stack...),
		TotalEvents: r.seq,
		Dropped:     r.seq - int64(r.n),
		FirstSeq:    r.seq - int64(r.n) + 1,
		Cumulative:  r.g.Snapshot(),
		Events:      make([]EventRecord, 0, r.n),
	}
	if r.closed != nil {
		c := *r.closed
		w.Closed = &c
	}
	// Oldest event lives at pos when the ring wrapped, at 0 otherwise.
	start := 0
	if r.n == len(r.ring) {
		start = r.pos
	}
	for i := 0; i < r.n; i++ {
		e := r.ring[(start+i)%len(r.ring)]
		w.Events = append(w.Events, Decode(w.FirstSeq+int64(i), e))
	}
	return w
}

// Stats is the recorder's live accounting — what the wa_flight_* metric
// families export.
type Stats struct {
	Capacity    int   `json:"capacity"`
	Len         int   `json:"len"`         // ring occupancy
	TotalEvents int64 `json:"totalEvents"` // events ever appended
	Dropped     int64 `json:"dropped"`     // events overwritten (total - occupancy)
	Captures    int64 `json:"captures"`    // Capture/Peek calls
}

// Stats returns the live accounting. Safe from any goroutine.
func (r *Recorder) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return Stats{
		Capacity:    len(r.ring),
		Len:         r.n,
		TotalEvents: r.seq,
		Dropped:     r.seq - int64(r.n),
		Captures:    r.captures,
	}
}
