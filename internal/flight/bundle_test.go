package flight_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"writeavoid/internal/flight"
	"writeavoid/internal/machine"
	"writeavoid/internal/matrix"
	"writeavoid/internal/pmm"
	"writeavoid/internal/profile"
)

var update = flag.Bool("update", false, "rewrite the golden bundle")

// testBundle builds a fully deterministic bundle: a violation over a
// mid-span capture of a counted hierarchy, plus two rank windows from a
// flight.Group driven directly.
func testBundle() *flight.Bundle {
	h := machine.New(false, machine.GenericLevels(3)...)
	fr := flight.New(8, nil)
	h.Attach(fr)
	fr.Phase("setup")
	h.Begin("step 0")
	h.Load(0, 64)
	h.Load(1, 24)
	h.Store(0, 32)
	h.Flops(16)
	h.End()
	fr.Phase("multiply")
	h.Begin("step 1")
	h.Load(1, 8)
	h.Store(1, 4)
	w := fr.Capture("violation") // mid-span: stack ["step 1"], ring wrapped

	g := flight.NewGroup("mm", 8, nil)
	for rank := 0; rank < 2; rank++ {
		rec := g.Recorder(rank)
		rec.Record(machine.Event{Kind: machine.EvBegin, Label: "step 1"})
		rec.Record(machine.Event{Kind: machine.EvLoad, Arg: 0, Words: int64(10 + rank)})
		rec.Record(machine.Event{Kind: machine.EvEnd})
	}

	return &flight.Bundle{
		Reason:     "violation",
		CapturedAt: time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC),
		Violation: &flight.ViolationInfo{
			ID:       1,
			Check:    "wa-output-floor",
			Kernel:   "multiply",
			Expected: 4096,
			Observed: 1024,
			Slack:    1,
			Detail:   "interface 1 store words",
		},
		Window: w,
		Ranks:  g.Windows("violation"),
	}
}

// The bundle's JSON form is pinned by a golden file and survives a
// round-trip bit for bit — the dump format is a stable artifact, not an
// implementation detail.
func TestBundleJSONGoldenRoundTrip(t *testing.T) {
	b := testBundle()
	var buf bytes.Buffer
	if err := b.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "bundle.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate: go test ./internal/flight -run Golden -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("bundle JSON drifted from golden:\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}

	var back flight.Bundle
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	var again bytes.Buffer
	if err := back.WriteJSON(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatalf("bundle JSON does not round-trip:\nfirst:\n%s\nsecond:\n%s", buf.Bytes(), again.Bytes())
	}
}

// Windows carry their structural truth through serialization: the drop
// count, the span stack, and the superstep correlation label.
func TestBundleWindowSemantics(t *testing.T) {
	b := testBundle()
	if b.Window.Dropped <= 0 {
		t.Fatalf("8-slot ring over a longer run should drop events, Dropped = %d", b.Window.Dropped)
	}
	if len(b.Window.SpanStack) != 1 || b.Window.SpanStack[0] != "step 1" {
		t.Fatalf("mid-span capture stack = %v", b.Window.SpanStack)
	}
	if got, ok := b.Window.Superstep(); !ok || got != "step 1" {
		t.Fatalf("Superstep() = %q, %v", got, ok)
	}
	if len(b.Ranks) != 2 {
		t.Fatalf("want 2 rank windows, got %d", len(b.Ranks))
	}
	for _, rw := range b.Ranks {
		if rw.Run != "mm" {
			t.Fatalf("rank %d Run = %q", rw.Rank, rw.Run)
		}
		if rw.Superstep != "step 1" {
			t.Fatalf("rank %d superstep = %q", rw.Rank, rw.Superstep)
		}
	}
}

// Every bundle's Perfetto export validates: balanced spans even when the
// window's tail truncates a Begin or holds spans still open at capture.
func TestWriteTraceValidates(t *testing.T) {
	b := testBundle()

	// Make the truncation case explicit: a ring so small the Begin of the
	// final span was overwritten, leaving a bare End plus an open span.
	fr := flight.New(4, nil)
	fr.Record(machine.Event{Kind: machine.EvBegin, Label: "lost"})
	for i := 0; i < 6; i++ {
		fr.Record(machine.Event{Kind: machine.EvLoad, Arg: 0, Words: 1})
	}
	fr.Record(machine.Event{Kind: machine.EvEnd})
	fr.Record(machine.Event{Kind: machine.EvBegin, Label: "open"})
	fr.Record(machine.Event{Kind: machine.EvStore, Arg: 0, Words: 2})
	b.Ranks = append(b.Ranks, flight.RankWindow{Run: "torn", Rank: 0, Window: fr.Peek("violation")})

	var buf bytes.Buffer
	if err := b.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	info, err := profile.ValidateTraceEvent(buf.Bytes())
	if err != nil {
		t.Fatalf("trace does not validate: %v\n%s", err, buf.Bytes())
	}
	if info.Spans < 4 {
		t.Fatalf("expected at least 4 spans (main + ranks + torn pair), got %d", info.Spans)
	}
	if len(info.Pids) < 3 {
		t.Fatalf("expected main pid + two run pids, got %v", info.Pids)
	}
}

// An empty window (a rank that never recorded) still exports a valid trace.
func TestWriteTraceEmptyWindow(t *testing.T) {
	fr := flight.New(8, nil)
	b := &flight.Bundle{
		Reason:     "manual",
		CapturedAt: time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC),
		Window:     fr.Peek("manual"),
	}
	var buf bytes.Buffer
	if err := b.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := profile.ValidateTraceEvent(buf.Bytes()); err != nil {
		t.Fatalf("empty-window trace does not validate: %v", err)
	}
}

// The dist correlation invariant: per-rank flight recorders observing a real
// 2.5D multiply all report the same superstep label — every rank's ring,
// frozen after the run, ends in the same barrier generation.
func TestDistSuperstepCorrelation(t *testing.T) {
	const q = 2
	n := 8 * q
	a := matrix.Random(n, n, 1)
	b := matrix.Random(n, n, 2)
	g := flight.NewGroup("mm25d", 1<<16, nil)
	cfg := pmm.Config{Q: q, C: 1, M1: 48, B1: 4, M2: 4096, Observe: g.Recorder}
	got, _, err := pmm.MM25D(cfg, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxAbsDiff(got, matrix.Mul(a, b)); d > 1e-10 {
		t.Fatalf("multiply wrong by %g", d)
	}

	ranks := g.Windows("test")
	if len(ranks) != q*q {
		t.Fatalf("want %d rank windows, got %d", q*q, len(ranks))
	}
	for _, rw := range ranks {
		if rw.Window.Dropped != 0 {
			t.Fatalf("ring sized to hold the whole run, but rank %d dropped %d", rw.Rank, rw.Window.Dropped)
		}
		if rw.Superstep != "step 1" {
			t.Fatalf("rank %d ends in superstep %q, want %q (Q=%d runs steps 0..%d)",
				rw.Rank, rw.Superstep, "step 1", q, q-1)
		}
	}
}
