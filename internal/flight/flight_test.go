package flight_test

import (
	"testing"

	"writeavoid/internal/flight"
	"writeavoid/internal/machine"
	"writeavoid/internal/smp"
)

// touchSink keeps the hierarchy's touch stream enabled so EvTouch/EvRange
// are emitted into the batch and the flush's stripping path (what a default
// touchless flight recorder rides) is actually exercised.
type touchSink struct{}

func (touchSink) Record(machine.Event) {}
func (touchSink) WantsTouch() bool     { return true }

// capture is a plain per-event touchless recorder: with the reference engine
// (batch capacity 1) it receives exactly the event set, in exactly the
// order, that a default flight recorder subscribes to.
type capture struct{ events []machine.Event }

func (c *capture) Record(e machine.Event) { c.events = append(c.events, e) }

// drive emits a mixed workload: nested spans, loads/stores on two
// interfaces, flops, residency marks, plus touch/range annotations that a
// touchless ring must never see.
func drive(h *machine.Hierarchy) {
	kernels := []string{"panel", "update", "trsm"}
	for i := 0; i < 57; i++ {
		h.Begin(kernels[i%len(kernels)])
		h.Load(i%2, int64(8+i%5))
		h.Touch(uint64(i)*64, i%3 == 0)
		h.Range(0, uint64(i)*64, 4, i%2 == 0)
		h.Store(i%2, int64(1+i%3))
		h.Flops(int64(1 + i%7))
		if i%9 == 0 {
			h.Init(1, 16)
			h.Discard(1, 8)
		}
		h.End()
	}
}

// referenceEvents runs drive under the per-event reference engine and
// returns the sequence a touchless recorder was delivered.
func referenceEvents() []machine.Event {
	h := machine.New(false, machine.GenericLevels(3)...)
	h.SetBatchCapacity(1)
	c := &capture{}
	h.Attach(c)
	h.Attach(touchSink{})
	drive(h)
	h.Flush()
	return c.events
}

// The exactness tentpole: the ring's decoded tail is bit-identical to the
// trailing events the reference engine delivers, for rings that wrap many
// times, wrap once, and never wrap.
func TestRingTailMatchesReferenceEngine(t *testing.T) {
	ref := referenceEvents()
	if len(ref) < 100 {
		t.Fatalf("drive too small: %d reference events", len(ref))
	}
	for _, capN := range []int{16, 128, 4096} {
		h := machine.New(false, machine.GenericLevels(3)...)
		fr := flight.New(capN, nil)
		h.Attach(fr)
		h.Attach(touchSink{})
		drive(h)
		w := fr.Capture("test")

		if w.TotalEvents != int64(len(ref)) {
			t.Fatalf("cap %d: TotalEvents %d, reference delivered %d", capN, w.TotalEvents, len(ref))
		}
		wantN := len(ref)
		if capN < wantN {
			wantN = capN
		}
		if len(w.Events) != wantN {
			t.Fatalf("cap %d: window holds %d events, want %d", capN, len(w.Events), wantN)
		}
		if w.Dropped != int64(len(ref)-wantN) {
			t.Fatalf("cap %d: Dropped %d, want %d", capN, w.Dropped, len(ref)-wantN)
		}
		tail := ref[len(ref)-wantN:]
		for i, got := range w.Events {
			want := flight.Decode(w.FirstSeq+int64(i), tail[i])
			if got != want {
				t.Fatalf("cap %d: event %d diverges:\nring:      %+v\nreference: %+v", capN, i, got, want)
			}
		}
	}
}

// The ring must never hold a touch or range event unless it opted in — and
// with WithTouch it must hold them all.
func TestTouchInterestGatesDenseEvents(t *testing.T) {
	run := func(fr *flight.Recorder) *flight.Window {
		h := machine.New(false, machine.GenericLevels(3)...)
		h.Attach(fr)
		h.Attach(touchSink{})
		drive(h)
		return fr.Capture("test")
	}
	w := run(flight.New(1<<14, nil))
	for _, e := range w.Events {
		if e.Kind == "Touch" || e.Kind == "Range" {
			t.Fatalf("touchless ring holds a %s event", e.Kind)
		}
	}
	base := w.TotalEvents
	wt := run(flight.New(1<<14, nil, flight.WithTouch()))
	touches := int64(0)
	for _, e := range wt.Events {
		if e.Kind == "Touch" || e.Kind == "Range" {
			touches++
		}
	}
	if touches != 57*2 {
		t.Fatalf("touch-interested ring holds %d dense events, drive emitted %d", touches, 57*2)
	}
	if wt.TotalEvents != base+touches {
		t.Fatalf("touch run total %d != touchless total %d + %d dense", wt.TotalEvents, base, touches)
	}
}

// Phase deltas telescope: each closed delta is exactly the difference of the
// cumulative snapshots around it, and an event-free phase closes silently.
func TestPhaseDeltaTelescopes(t *testing.T) {
	h := machine.New(false, machine.GenericLevels(3)...)
	fr := flight.New(0, nil)
	h.Attach(fr)

	fr.Phase("a")
	h.Load(0, 100)
	h.Store(0, 40)
	h.Flops(10)
	fr.Phase("b")
	w1 := fr.Capture("t")
	if w1.Closed == nil || w1.Closed.Kernel != "a" {
		t.Fatalf("after closing phase a, Closed = %+v", w1.Closed)
	}
	d := w1.Closed.Delta
	if d.Interfaces[0].LoadWords != 100 || d.Interfaces[0].StoreWords != 40 || d.Flops != 10 {
		t.Fatalf("phase a delta wrong: %+v", d)
	}

	h.Load(0, 7)
	h.Store(1, 5)
	fr.Phase("c")
	w2 := fr.Capture("t")
	if w2.Closed.Kernel != "b" {
		t.Fatalf("after closing phase b, Closed.Kernel = %q", w2.Closed.Kernel)
	}
	got := w2.Closed.Delta
	want := w2.Cumulative.Sub(w1.Cumulative)
	if got.Interfaces[0].LoadWords != want.Interfaces[0].LoadWords ||
		got.Interfaces[1].StoreWords != want.Interfaces[1].StoreWords {
		t.Fatalf("phase b delta %+v != cumulative difference %+v", got, want)
	}

	// No events under "c": closing it keeps the last event-carrying delta.
	fr.Phase("d")
	w3 := fr.Capture("t")
	if w3.Closed.Kernel != "b" {
		t.Fatalf("empty phase close moved Closed to %q", w3.Closed.Kernel)
	}
}

// steadyBatch is a balanced block (spans open and close inside it) over a
// fixed counter geometry, so repeated appends grow nothing.
func steadyBatch() []machine.Event {
	batch := []machine.Event{{Kind: machine.EvBegin, Label: "k"}}
	for i := 0; i < 30; i++ {
		batch = append(batch,
			machine.Event{Kind: machine.EvLoad, Arg: i % 2, Words: 8},
			machine.Event{Kind: machine.EvStore, Arg: i % 2, Words: 4},
			machine.Event{Kind: machine.EvFlops, Words: 16},
		)
	}
	return append(batch, machine.Event{Kind: machine.EvEnd})
}

// The steady-state pin: once warm, RecordBatch allocates nothing.
func TestRecordBatchSteadyStateAllocsNothing(t *testing.T) {
	fr := flight.New(256, nil)
	batch := steadyBatch()
	fr.RecordBatch(batch) // warm: counter geometry, stack backing
	allocs := testing.AllocsPerRun(100, func() { fr.RecordBatch(batch) })
	if allocs != 0 {
		t.Fatalf("RecordBatch allocates %v per batch in steady state, want 0", allocs)
	}
}

// BenchmarkRecordBatch pins the per-event cost of the always-on ring: one
// lock round-trip per batch, then a slot copy and counter fold per event.
func BenchmarkRecordBatch(b *testing.B) {
	fr := flight.New(4096, nil)
	batch := steadyBatch()
	fr.RecordBatch(batch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fr.RecordBatch(batch)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(batch)), "ns/event")
}

// A single flight recorder shared by concurrently recording smp workers,
// probed by a concurrent Peek loop, must stay exact on totals (run under
// -race in CI).
func TestConcurrentRunParallelAndPeek(t *testing.T) {
	tasks, _ := smp.MatMulTasks(16, 16, 16, 4, 64)
	sched := smp.DepthFirst(tasks, 4)
	fr := flight.New(1024, nil, flight.WithTouch())

	done := make(chan struct{})
	probed := make(chan int64, 1)
	go func() {
		var peeks int64
		for {
			select {
			case <-done:
				probed <- peeks
				return
			default:
				w := fr.Peek("probe")
				if int64(len(w.Events)) != w.TotalEvents-w.Dropped {
					panic("inconsistent window accounting")
				}
				_ = fr.Stats()
				peeks++
			}
		}
	}()

	res, err := smp.RunParallel(sched, fr)
	close(done)
	peeks := <-probed
	if err != nil {
		t.Fatal(err)
	}
	st := fr.Stats()
	// Every access is one EvTouch, every task one EvBegin/EvEnd pair.
	want := res.AccessesRun + 2*int64(res.TasksRun)
	if st.TotalEvents != want {
		t.Fatalf("flight saw %d events, schedule emitted %d", st.TotalEvents, want)
	}
	if st.Captures != peeks {
		t.Fatalf("Stats counted %d captures, prober took %d", st.Captures, peeks)
	}
	snap := fr.Capture("final")
	if snap.Cumulative.TouchReads+snap.Cumulative.TouchWrites != res.AccessesRun {
		t.Fatalf("touch tally %d+%d != accesses %d",
			snap.Cumulative.TouchReads, snap.Cumulative.TouchWrites, res.AccessesRun)
	}
}
