package core

import (
	"fmt"

	"writeavoid/internal/access"
	"writeavoid/internal/machine"
	"writeavoid/internal/matrix"
)

// This file is the address-trace façade over the counted algorithm drivers:
// the Section 6 experiments (Figures 2 and 5, Propositions 6.1 and 6.2) need
// element-granularity access streams fed into a simulated cache, and they get
// them by running the same gemmLevel/trsmLevel/cholLeftLevel recursions that
// drive the word counters, with a Tracer bound to the operands and a
// machine.TraceRecorder forwarding every Touch to the sink. There is exactly
// one implementation of each blocked loop nest; these types only configure
// it: dims, blocking, per-level loop order, operand address layout.

// TraceLevel is one level of blocking in a traced matmul.
type TraceLevel struct {
	// Block is the tile edge at this level.
	Block int
	// ContractionInner selects the loop order: true is the write-avoiding
	// order of the paper's Fig. 4a WAMatMul (output-block loops outside,
	// contraction innermost), i.e. OrderWA; false is Fig. 4b's ABMatMul
	// order (contraction outermost), i.e. OrderNonWA.
	ContractionInner bool
}

// tracePlan assembles the machinery shared by every trace façade: an
// unbounded non-strict hierarchy with one interface per blocking level, the
// per-interface loop orders, a Tracer, and a TraceRecorder forwarding to
// sink. Levels are given coarsest first (interface indices count from the
// fastest level, so the list is reversed); an empty list degenerates to a
// single block covering the whole problem, which sends the first recursion
// step straight to the element kernel.
func tracePlan(levels []TraceLevel, maxDim int, sink access.Sink) (*Plan, *Tracer) {
	bs := make([]int, 0, len(levels))
	orders := make([]Order, 0, len(levels))
	for i := len(levels) - 1; i >= 0; i-- {
		bs = append(bs, levels[i].Block)
		if levels[i].ContractionInner {
			orders = append(orders, OrderWA)
		} else {
			orders = append(orders, OrderNonWA)
		}
	}
	if len(bs) == 0 {
		if maxDim < 1 {
			maxDim = 1
		}
		bs = append(bs, maxDim)
		orders = append(orders, OrderWA)
	}
	hl := make([]machine.Level, len(bs)+1)
	for i := range hl {
		hl[i] = machine.Level{Name: fmt.Sprintf("T%d", i)}
	}
	h := machine.New(false, hl...)
	h.Attach(machine.NewTraceRecorder(sink))
	tr := NewTracer(h)
	return &Plan{H: h, BlockSizes: bs, Orders: orders, Trace: tr}, tr
}

// MatMulTrace describes a traced multiplication C(m×l) += A(m×n)*B(n×l),
// with blocking levels ordered coarsest (L3) first. An empty Levels list goes
// straight to the element kernel.
type MatMulTrace struct {
	M, N, L int
	Levels  []TraceLevel

	A, B, C access.Region
}

// NewMatMulTrace lays out A, B and C in a fresh line-aligned address space.
func NewMatMulTrace(m, n, l int, lineBytes int, levels ...TraceLevel) *MatMulTrace {
	lay := access.NewLayout(uint64(lineBytes))
	return &MatMulTrace{
		M: m, N: n, L: l,
		Levels: levels,
		A:      lay.NewRegion(m, n),
		B:      lay.NewRegion(n, l),
		C:      lay.NewRegion(m, l),
	}
}

// Run emits the full access stream into sink.
func (t *MatMulTrace) Run(sink access.Sink) {
	a, b, c := matrix.New(t.M, t.N), matrix.New(t.N, t.L), matrix.New(t.M, t.L)
	p, tr := tracePlan(t.Levels, max(t.M, max(t.N, t.L)), sink)
	tr.Bind(a, t.A)
	tr.Bind(b, t.B)
	tr.Bind(c, t.C)
	gemmLevel(p, p.topInterface(), c, a, b, modeAddAB)
	p.H.Flush() // deliver the tail of the batched touch stream to the sink
}

// PredictTraceOps returns the exact number of reads and writes the trace will
// emit when all dims divide the finest block evenly: every base-kernel call
// reads and writes each of its C elements once and streams A and B.
func (t *MatMulTrace) PredictTraceOps() (reads, writes int64) {
	fin := t.finestBlock()
	M, N, L := int64(t.M), int64(t.N), int64(t.L)
	cVisits := M * L * (N / int64(fin))
	return 2*M*N*L + cVisits, cVisits
}

func (t *MatMulTrace) finestBlock() int {
	if len(t.Levels) == 0 {
		return t.N
	}
	return t.Levels[len(t.Levels)-1].Block
}

// TRSMTrace traces the two-level blocked triangular solve T*X = B
// (T n x n upper, B n x m, X overwrites B) in the write-avoiding order.
type TRSMTrace struct {
	N, M, Block int
	T, B        access.Region
}

// NewTRSMTrace lays out T and B in a fresh address space.
func NewTRSMTrace(n, m, block, lineBytes int) *TRSMTrace {
	lay := access.NewLayout(uint64(lineBytes))
	return &TRSMTrace{N: n, M: m, Block: block, T: lay.NewRegion(n, n), B: lay.NewRegion(n, m)}
}

// Run emits the access stream. The dummy operands are the identity system
// I*X = 0 (upper triangular and trivially nonsingular); the access stream is
// data-independent.
func (t *TRSMTrace) Run(sink access.Sink) {
	tm, bm := matrix.Identity(t.N), matrix.New(t.N, t.M)
	p, tr := tracePlan([]TraceLevel{{Block: t.Block, ContractionInner: true}}, 0, sink)
	tr.Bind(tm, t.T)
	tr.Bind(bm, t.B)
	trsmLevel(p, p.topInterface(), tm, bm)
	p.H.Flush() // deliver the tail of the batched touch stream to the sink
}

// CholeskyTrace traces the two-level left-looking blocked Cholesky
// (Algorithm 3 order) on an n x n SPD matrix.
type CholeskyTrace struct {
	N, Block int
	A        access.Region
}

// NewCholeskyTrace lays out A in a fresh address space.
func NewCholeskyTrace(n, block, lineBytes int) *CholeskyTrace {
	lay := access.NewLayout(uint64(lineBytes))
	return &CholeskyTrace{N: n, Block: block, A: lay.NewRegion(n, n)}
}

// Run emits the access stream, factoring the identity (SPD; the access
// stream is data-independent).
func (t *CholeskyTrace) Run(sink access.Sink) {
	am := matrix.Identity(t.N)
	p, tr := tracePlan([]TraceLevel{{Block: t.Block, ContractionInner: true}}, 0, sink)
	tr.Bind(am, t.A)
	if err := cholLeftLevel(p, p.topInterface(), am); err != nil {
		panic(fmt.Sprintf("core: CholeskyTrace on identity failed: %v", err))
	}
	p.H.Flush() // deliver the tail of the batched touch stream to the sink
}
