package core

import (
	"testing"

	"writeavoid/internal/access"
	"writeavoid/internal/cache"
)

func TestTraceOpCountsMatchPrediction(t *testing.T) {
	tr := NewMatMulTrace(16, 32, 16, 64,
		TraceLevel{Block: 8, ContractionInner: true},
		TraceLevel{Block: 4, ContractionInner: false})
	var c access.Counter
	tr.Run(&c)
	wantR, wantW := tr.PredictTraceOps()
	if c.Reads != wantR || c.Writes != wantW {
		t.Fatalf("got (%d,%d) want (%d,%d)", c.Reads, c.Writes, wantR, wantW)
	}
}

func TestTraceTouchesEveryOperandElement(t *testing.T) {
	m, n, l := 8, 8, 8
	tr := NewMatMulTrace(m, n, l, 64, TraceLevel{Block: 4, ContractionInner: true})
	seen := map[uint64]bool{}
	tr.Run(access.SinkFunc(func(a uint64, _ bool) { seen[a] = true }))
	for i := 0; i < m; i++ {
		for k := 0; k < n; k++ {
			if !seen[tr.A.Addr(i, k)] {
				t.Fatalf("A(%d,%d) never touched", i, k)
			}
		}
	}
	for k := 0; k < n; k++ {
		for j := 0; j < l; j++ {
			if !seen[tr.B.Addr(k, j)] {
				t.Fatalf("B(%d,%d) never touched", k, j)
			}
		}
	}
	for i := 0; i < m; i++ {
		for j := 0; j < l; j++ {
			if !seen[tr.C.Addr(i, j)] {
				t.Fatalf("C(%d,%d) never touched", i, j)
			}
		}
	}
}

func TestTraceWritesOnlyC(t *testing.T) {
	tr := NewMatMulTrace(8, 8, 8, 64, TraceLevel{Block: 4, ContractionInner: false})
	tr.Run(access.SinkFunc(func(a uint64, w bool) {
		if w && (a < tr.C.Base || a >= tr.C.Base+uint64(8*8*8)) {
			t.Fatalf("write outside C at %d", a)
		}
	}))
}

func TestTraceRaggedDimensions(t *testing.T) {
	// Dims not divisible by the block must still touch everything exactly.
	tr := NewMatMulTrace(10, 7, 13, 64, TraceLevel{Block: 4, ContractionInner: true})
	var c access.Counter
	tr.Run(&c)
	// Reads of A and B are exactly 2*m*n*l regardless of blocking.
	abReads := int64(2 * 10 * 7 * 13)
	if c.Reads < abReads {
		t.Fatalf("reads %d < A/B stream %d", c.Reads, abReads)
	}
	if c.Writes < 10*13 {
		t.Fatalf("writes %d < output size", c.Writes)
	}
}

func TestCOTraceTotalWork(t *testing.T) {
	co := NewCOMatMulTrace(16, 16, 16, 4, 64)
	var c access.Counter
	co.Run(&c)
	// A and B are each read exactly once per inner-loop iteration.
	if c.Reads < 2*16*16*16 {
		t.Fatalf("CO reads %d too low", c.Reads)
	}
	if c.Writes <= 0 {
		t.Fatal("CO trace emitted no writes")
	}
}

// The central Section 6 comparison in miniature: through the same simulated
// LRU cache, the WA instruction order must cause write-backs close to the
// output size, while the CO order's write-backs grow with the contraction
// dimension.
func TestWAOrderBeatsCOOnWritebacks(t *testing.T) {
	const lineB = 64
	m, l := 32, 32
	n := 256
	// Cache: 3 blocks of 16x16 doubles = 6KB -> 8KB cache.
	mkCache := func() *cache.FALRU { return cache.NewFALRU(8*1024, lineB) }

	wa := NewMatMulTrace(m, n, l, lineB, TraceLevel{Block: 16, ContractionInner: true})
	cWA := mkCache()
	wa.Run(access.SinkFunc(cWA.Access))
	cWA.FlushDirty()

	co := NewCOMatMulTrace(m, n, l, 8, lineB)
	cCO := mkCache()
	co.Run(access.SinkFunc(cCO.Access))
	cCO.FlushDirty()

	outLines := int64(m * l * 8 / lineB)
	if got := cWA.Stats().VictimsM; got > 3*outLines {
		t.Fatalf("WA write-backs %d far above output %d lines", got, outLines)
	}
	if got := cCO.Stats().VictimsM; got < 4*outLines {
		t.Fatalf("CO write-backs %d unexpectedly low (output %d lines)", got, outLines)
	}
}

func TestIdealCacheMissesFormula(t *testing.T) {
	// With cache 3*8*s^2 bytes, s=16: misses = 3*n^3/16 elements / 8 per line.
	got := IdealCacheMisses(64, 64, 64, 3*8*16*16, 64)
	want := int64(3*64*64*(64/16)) * 8 / 64
	if got != want {
		t.Fatalf("got %d want %d", got, want)
	}
	if IdealCacheMisses(8, 8, 8, 1, 64) <= 0 {
		t.Fatal("degenerate cache should still give positive misses")
	}
}

// Proposition 6.1: with the two-level WA order and a fully-associative LRU
// fast memory holding at least five blocks plus a line, the number of
// write-backs equals the number of C lines exactly (no write is wasted),
// independent of the instruction order inside the block kernel.
func TestProp61MatMulExactWritebacks(t *testing.T) {
	const lineB = 64
	b := 16
	m, n, l := 64, 64, 64
	capBytes := 5*b*b*8 + lineB
	for _, inner := range []bool{true, false} {
		c := cache.NewFALRU(capBytes, lineB)
		tr := NewMatMulTrace(m, n, l, lineB,
			TraceLevel{Block: b, ContractionInner: true},
			TraceLevel{Block: 4, ContractionInner: inner})
		tr.Run(access.SinkFunc(c.Access))
		c.FlushDirty()
		outLines := int64(m * l * 8 / lineB)
		if got := c.Stats().VictimsM; got != outLines {
			t.Fatalf("inner=%v: write-backs %d != C lines %d", inner, got, outLines)
		}
	}
}

// The same configuration with only three blocks fitting (the Fig. 5 left
// column with block 1023) and the multi-level WA order must cause extra
// write-backs: parts of the C block fall to low LRU priority and get evicted
// repeatedly.
func TestThreeFitMultiLevelOrderWritesMore(t *testing.T) {
	const lineB = 64
	b := 16
	m, n, l := 64, 64, 64
	capBytes := 3 * b * b * 8 // just under three blocks plus nothing spare
	tr := NewMatMulTrace(m, n, l, lineB,
		TraceLevel{Block: b, ContractionInner: true},
		TraceLevel{Block: 4, ContractionInner: true}) // Fig 4a: subcolumn order
	c := cache.NewFALRU(capBytes, lineB)
	tr.Run(access.SinkFunc(c.Access))
	c.FlushDirty()
	outLines := int64(m * l * 8 / lineB)
	if got := c.Stats().VictimsM; got <= outLines {
		t.Fatalf("3-fit multi-level order should exceed the write lower bound: %d vs %d",
			got, outLines)
	}
}
