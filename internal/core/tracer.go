package core

import (
	"fmt"
	"math"

	"writeavoid/internal/access"
	"writeavoid/internal/machine"
	"writeavoid/internal/matrix"
)

// Tracer gives the counted algorithm drivers an element-granularity address
// stream: each root matrix is bound to an access.Region, block views are
// resolved back to root coordinates by pointer arithmetic on the shared
// backing slice, and every element read or write inside a base-case kernel is
// dispatched through Hierarchy.Touch. With a machine.TraceRecorder attached
// the stream feeds a simulated cache (the Section 6 experiments); with no
// touch-interested recorder attached, Touch is a no-op and only the float
// arithmetic remains.
//
// A Plan with a non-nil Trace switches its base-case kernels to the traced
// twins below, which perform the same computation as the internal/matrix
// reference kernels while emitting every access in the kernels' exact
// instruction order.
type Tracer struct {
	h     *machine.Hierarchy
	bound []traceBinding
}

type traceBinding struct {
	data []float64 // the root matrix's full backing slice
	cols int       // root stride (== Cols; roots must be tight)
	reg  access.Region
}

// NewTracer builds a tracer emitting through h.Touch.
func NewTracer(h *machine.Hierarchy) *Tracer {
	return &Tracer{h: h}
}

// Bind associates a root matrix with the address region its elements occupy.
// The matrix must be tight (Stride == Cols) and match the region's width.
// Views created from the root via Block resolve to the same region.
func (t *Tracer) Bind(m *matrix.Dense, reg access.Region) {
	if m.Stride != m.Cols {
		panic("core: Tracer.Bind requires a tight root matrix (Stride == Cols)")
	}
	if reg.Cols != m.Cols {
		panic(fmt.Sprintf("core: Tracer.Bind region width %d != matrix width %d", reg.Cols, m.Cols))
	}
	t.bound = append(t.bound, traceBinding{data: m.Data, cols: m.Cols, reg: reg})
}

// tracedView is one operand resolved to root coordinates, cached for the
// duration of a kernel call so per-element emission is two adds and a Touch.
type tracedView struct {
	t      *Tracer
	reg    access.Region
	r0, c0 int
}

// view resolves a (possibly nested) block view back to its bound root.
// Dense.Block reslices the root's backing array with a full tail, so the
// view's offset into the root is the difference of slice lengths; the pointer
// comparison proves the candidate root really is this view's ancestor.
func (t *Tracer) view(v *matrix.Dense) tracedView {
	if len(v.Data) > 0 {
		for i := range t.bound {
			b := &t.bound[i]
			off := len(b.data) - len(v.Data)
			if off >= 0 && &b.data[off] == &v.Data[0] {
				return tracedView{t: t, reg: b.reg, r0: off / b.cols, c0: off % b.cols}
			}
		}
	}
	panic("core: traced kernel operand is not a view of any bound matrix")
}

func (v tracedView) touch(i, j int, write bool) {
	v.t.h.Touch(v.reg.Addr(v.r0+i, v.c0+j), write)
}

// Ranges annotates the block transfer just counted across interface s with
// block v's address extent: one EvRange run per block row (rows are
// contiguous in the bound root). Addresses are in elements (region byte
// addresses scaled by the element size) so run lengths match the word
// units of the enclosing Load/Store.
func (t *Tracer) Ranges(s int, v *matrix.Dense, store bool) {
	tv := t.view(v)
	base := tv.reg.Base/tv.reg.ElemSz + uint64(tv.r0*tv.reg.Cols+tv.c0)
	for i := 0; i < v.Rows; i++ {
		t.h.Range(s, base+uint64(i*tv.reg.Cols), int64(v.Cols), store)
	}
}

// RangesLower is Ranges restricted to the lower triangle (diagonal
// included) of square block v, matching the triWords transfers of the
// Cholesky drivers: row i contributes a run of i+1 words.
func (t *Tracer) RangesLower(s int, v *matrix.Dense, store bool) {
	tv := t.view(v)
	base := tv.reg.Base/tv.reg.ElemSz + uint64(tv.r0*tv.reg.Cols+tv.c0)
	for i := 0; i < v.Rows; i++ {
		run := i + 1
		if run > v.Cols {
			run = v.Cols
		}
		t.h.Range(s, base+uint64(i*tv.reg.Cols), int64(run), store)
	}
}

// MulAdd is the traced twin of matrix.MulAdd: C += A*B, emitting per C
// element one read, the A/B dot-product stream, and one write.
func (t *Tracer) MulAdd(c, a, b *matrix.Dense) {
	tc, ta, tb := t.view(c), t.view(a), t.view(b)
	for i := 0; i < c.Rows; i++ {
		for j := 0; j < c.Cols; j++ {
			tc.touch(i, j, false)
			s := c.At(i, j)
			for k := 0; k < a.Cols; k++ {
				ta.touch(i, k, false)
				tb.touch(k, j, false)
				s += a.At(i, k) * b.At(k, j)
			}
			tc.touch(i, j, true)
			c.Set(i, j, s)
		}
	}
}

// MulSub is the traced twin of matrix.MulSub: C -= A*B.
func (t *Tracer) MulSub(c, a, b *matrix.Dense) {
	tc, ta, tb := t.view(c), t.view(a), t.view(b)
	for i := 0; i < c.Rows; i++ {
		for j := 0; j < c.Cols; j++ {
			tc.touch(i, j, false)
			s := c.At(i, j)
			for k := 0; k < a.Cols; k++ {
				ta.touch(i, k, false)
				tb.touch(k, j, false)
				s -= a.At(i, k) * b.At(k, j)
			}
			tc.touch(i, j, true)
			c.Set(i, j, s)
		}
	}
}

// MulSubTrans is the traced twin of matrix.MulSubTrans: C -= A*B^T.
func (t *Tracer) MulSubTrans(c, a, b *matrix.Dense) {
	tc, ta, tb := t.view(c), t.view(a), t.view(b)
	for i := 0; i < c.Rows; i++ {
		for j := 0; j < c.Cols; j++ {
			tc.touch(i, j, false)
			s := c.At(i, j)
			for k := 0; k < a.Cols; k++ {
				ta.touch(i, k, false)
				tb.touch(j, k, false)
				s -= a.At(i, k) * b.At(j, k)
			}
			tc.touch(i, j, true)
			c.Set(i, j, s)
		}
	}
}

// MulSubTransLower is the traced twin of matrix.MulSubTransLower: the lower
// triangle (including diagonal) of square C -= A*B^T, the SYRK flavor
// Cholesky's diagonal update needs.
func (t *Tracer) MulSubTransLower(c, a, b *matrix.Dense) {
	tc, ta, tb := t.view(c), t.view(a), t.view(b)
	for i := 0; i < c.Rows; i++ {
		for j := 0; j <= i && j < c.Cols; j++ {
			tc.touch(i, j, false)
			s := c.At(i, j)
			for k := 0; k < a.Cols; k++ {
				ta.touch(i, k, false)
				tb.touch(j, k, false)
				s -= a.At(i, k) * b.At(j, k)
			}
			tc.touch(i, j, true)
			c.Set(i, j, s)
		}
	}
}

// TRSMUpperLeft is the traced twin of matrix.TRSMUpperLeft: back substitution
// over the columns of B, reading the diagonal entry just before each write.
func (t *Tracer) TRSMUpperLeft(tm, b *matrix.Dense) {
	tt, tb := t.view(tm), t.view(b)
	n := tm.Rows
	for j := 0; j < b.Cols; j++ {
		for i := n - 1; i >= 0; i-- {
			tb.touch(i, j, false)
			s := b.At(i, j)
			for k := i + 1; k < n; k++ {
				tt.touch(i, k, false)
				tb.touch(k, j, false)
				s -= tm.At(i, k) * b.At(k, j)
			}
			tt.touch(i, i, false)
			d := tm.At(i, i)
			if d == 0 {
				panic("core: traced TRSMUpperLeft singular diagonal")
			}
			tb.touch(i, j, true)
			b.Set(i, j, s/d)
		}
	}
}

// TRSMLowerTransRight is the traced twin of matrix.TRSMLowerTransRight:
// X*L^T = B row by row.
func (t *Tracer) TRSMLowerTransRight(l, b *matrix.Dense) {
	tl, tb := t.view(l), t.view(b)
	n := l.Rows
	for i := 0; i < b.Rows; i++ {
		for j := 0; j < n; j++ {
			tb.touch(i, j, false)
			s := b.At(i, j)
			for k := 0; k < j; k++ {
				tb.touch(i, k, false)
				tl.touch(j, k, false)
				s -= b.At(i, k) * l.At(j, k)
			}
			tl.touch(j, j, false)
			d := l.At(j, j)
			if d == 0 {
				panic("core: traced TRSMLowerTransRight singular diagonal")
			}
			tb.touch(i, j, true)
			b.Set(i, j, s/d)
		}
	}
}

// CholeskyInPlace is the traced twin of matrix.CholeskyInPlace. The diagonal
// update reads A(j,k) twice per term (squaring it), exactly as the compute
// kernel does; the final zeroing of the strict upper triangle is performed
// but not emitted — the factorization's access stream never touches the upper
// triangle, which is what keeps the Proposition 6.2 write-back count at the
// lower-triangle output size.
func (t *Tracer) CholeskyInPlace(a *matrix.Dense) error {
	ta := t.view(a)
	n := a.Rows
	for j := 0; j < n; j++ {
		ta.touch(j, j, false)
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			ta.touch(j, k, false)
			ta.touch(j, k, false)
			d -= a.At(j, k) * a.At(j, k)
		}
		if d <= 0 {
			return fmt.Errorf("core: traced Cholesky not positive definite at pivot %d (d=%g)", j, d)
		}
		d = math.Sqrt(d)
		ta.touch(j, j, true)
		a.Set(j, j, d)
		for i := j + 1; i < n; i++ {
			ta.touch(i, j, false)
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				ta.touch(i, k, false)
				ta.touch(j, k, false)
				s -= a.At(i, k) * a.At(j, k)
			}
			ta.touch(i, j, true)
			a.Set(i, j, s/d)
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			a.Set(i, j, 0)
		}
	}
	return nil
}
