package core

import (
	"testing"

	"writeavoid/internal/access"
	"writeavoid/internal/cache"
)

const lineB = 64

// lruFiveFit builds the Proposition 6.1/6.2 cache: five b x b blocks of
// doubles plus one line, fully associative, true LRU.
func lruFiveFit(b int) *cache.FALRU {
	return cache.NewFALRU(5*b*b*8+lineB, lineB)
}

// Proposition 6.2, TRSM: write-backs equal the output (n*m words in lines).
func TestProp62TRSMExactWritebacks(t *testing.T) {
	n, m, b := 64, 64, 16
	tr := NewTRSMTrace(n, m, b, lineB)
	c := lruFiveFit(b)
	tr.Run(access.SinkFunc(c.Access))
	c.FlushDirty()
	outLines := int64(n * m * 8 / lineB)
	if got := c.Stats().VictimsM; got != outLines {
		t.Fatalf("TRSM write-backs %d != output %d lines", got, outLines)
	}
}

// Proposition 6.2, Cholesky: write-backs equal the touched lower-triangle
// blocks (the output, in block granularity).
func TestProp62CholeskyExactWritebacks(t *testing.T) {
	n, b := 64, 16
	tr := NewCholeskyTrace(n, b, lineB)
	c := lruFiveFit(b)
	tr.Run(access.SinkFunc(c.Access))
	c.FlushDirty()
	// The trace dirties the lower-triangle blocks, and within each
	// diagonal block only the lower-triangle lines: off-diagonal blocks
	// contribute b^2 words each, diagonal blocks sum ceil((r+1)*8/lineB)
	// lines over their rows.
	tBlocks := int64(n / b)
	elemsPerLine := lineB / 8
	diagLines := int64(0)
	for r := 0; r < b; r++ {
		diagLines += int64((r + elemsPerLine) / elemsPerLine) // ceil((r+1)/epl)
	}
	outLines := tBlocks*(tBlocks-1)/2*int64(b*b)/int64(elemsPerLine) + tBlocks*diagLines
	if got := c.Stats().VictimsM; got != outLines {
		t.Fatalf("Cholesky write-backs %d != touched output %d lines", got, outLines)
	}
}

// The non-geometric sanity side: the same traces through a cache holding
// fewer than the required blocks must write back more.
func TestProp62SmallCacheWritesMore(t *testing.T) {
	n, m, b := 64, 64, 16
	tr := NewTRSMTrace(n, m, b, lineB)
	small := cache.NewFALRU(2*b*b*8, lineB)
	tr.Run(access.SinkFunc(small.Access))
	small.FlushDirty()
	outLines := int64(n * m * 8 / lineB)
	if got := small.Stats().VictimsM; got <= outLines {
		t.Fatalf("2-fit cache should exceed the bound: %d vs %d", got, outLines)
	}
}

// The traces touch every element of their operands.
func TestTracesTouchOperands(t *testing.T) {
	tr := NewTRSMTrace(16, 8, 4, lineB)
	seen := map[uint64]bool{}
	tr.Run(access.SinkFunc(func(a uint64, _ bool) { seen[a] = true }))
	for i := 0; i < 16; i++ {
		for j := 0; j < 8; j++ {
			if !seen[tr.B.Addr(i, j)] {
				t.Fatalf("B(%d,%d) untouched", i, j)
			}
		}
		for j := i; j < 16; j++ {
			if !seen[tr.T.Addr(i, j)] {
				t.Fatalf("T(%d,%d) untouched", i, j)
			}
		}
	}

	ch := NewCholeskyTrace(16, 4, lineB)
	seen = map[uint64]bool{}
	ch.Run(access.SinkFunc(func(a uint64, _ bool) { seen[a] = true }))
	for i := 0; i < 16; i++ {
		for j := 0; j <= i; j++ {
			if !seen[ch.A.Addr(i, j)] {
				t.Fatalf("A(%d,%d) untouched", i, j)
			}
		}
	}
}
