package core

import (
	"writeavoid/internal/intmath"
	"writeavoid/internal/matrix"
)

// TRSM solves T*X = B for X where T is n-by-n upper triangular and B is
// n-by-m, overwriting B with X, per the plan's blocking (the paper's
// Algorithm 2 for OrderWA, generalized to multiple levels). Updates recurse
// into the blocked GEMM; the diagonal solve recurses into TRSM itself.
func TRSM(p *Plan, t, b *matrix.Dense) error {
	if t.Rows != t.Cols || t.Rows != b.Rows {
		return errShape("TRSM", b, t, b)
	}
	if err := p.validate(t.Rows, b.Cols); err != nil {
		return err
	}
	trsmLevel(p, p.topInterface(), t, b)
	return nil
}

func trsmLevel(p *Plan, s int, t, b *matrix.Dense) {
	if s < 0 {
		if p.Trace != nil {
			p.Trace.TRSMUpperLeft(t, b)
		} else {
			matrix.TRSMUpperLeft(t, b)
		}
		p.H.Flops(int64(t.Rows) * int64(t.Rows) * int64(b.Cols)) // ~n^2*m for the triangle
		return
	}
	bs := p.BlockSizes[s]
	n, m := t.Rows, b.Cols
	nb, mb := intmath.CeilDiv(n, bs), intmath.CeilDiv(m, bs)

	blkT := func(i, k int) *matrix.Dense {
		return t.Block(i*bs, k*bs, min(bs, n-i*bs), min(bs, n-k*bs))
	}
	blkB := func(i, j int) *matrix.Dense {
		return b.Block(i*bs, j*bs, min(bs, n-i*bs), min(bs, m-j*bs))
	}

	update := func(i, j, k int) {
		tb, xb := blkT(i, k), blkB(k, j)
		p.H.Load(s, words(tb))
		p.note(s, tb, false)
		p.H.Load(s, words(xb))
		p.note(s, xb, false)
		gemmLevel(p, s-1, blkB(i, j), tb, xb, modeSubAB)
		p.H.Discard(s, words(tb))
		p.H.Discard(s, words(xb))
	}
	diagSolve := func(i, j int) {
		tb := blkT(i, i)
		p.H.Load(s, words(tb))
		p.note(s, tb, false)
		trsmLevel(p, s-1, tb, blkB(i, j))
		p.H.Discard(s, words(tb))
	}

	mark := p.marking(s)
	switch p.orderAt(s) {
	case OrderWA:
		// Algorithm 2: k innermost, so B(i,j) accumulates all updates
		// while resident and is stored exactly once.
		for j := 0; j < mb; j++ {
			for i := nb - 1; i >= 0; i-- {
				if mark {
					p.H.Begin(bBlockLabels.Get(i, j))
				}
				bb := blkB(i, j)
				p.H.Load(s, words(bb))
				p.note(s, bb, false)
				for k := i + 1; k < nb; k++ {
					update(i, j, k)
				}
				diagSolve(i, j)
				p.H.Store(s, words(bb))
				p.note(s, bb, true)
				if mark {
					p.H.End()
				}
			}
		}
	case OrderNonWA:
		// k outermost (a right-looking substitution): after solving row
		// block k, immediately apply it to all blocks above, re-loading
		// and re-storing each B(i,j) once per k.
		for j := 0; j < mb; j++ {
			for k := nb - 1; k >= 0; k-- {
				if mark {
					p.H.Begin(kLabels.Get(k))
				}
				bb := blkB(k, j)
				p.H.Load(s, words(bb))
				p.note(s, bb, false)
				diagSolve(k, j)
				p.H.Store(s, words(bb))
				p.note(s, bb, true)
				for i := k - 1; i >= 0; i-- {
					cb := blkB(i, j)
					p.H.Load(s, words(cb))
					p.note(s, cb, false)
					update(i, j, k)
					p.H.Store(s, words(cb))
					p.note(s, cb, true)
				}
				if mark {
					p.H.End()
				}
			}
		}
	}
}

// PredictTRSM returns the exact OrderWA word counts at the top interface for
// an n-by-n triangular solve with m right-hand columns and block size B:
//
//	loads  = n*m (B blocks) + (n/B-1)*n*m (T,X update pairs) + n*B*(m/B)*(n/B) (diagonal blocks)
//	       = n^2*m/B + n*m
//	stores = n*m
//
// matching the paper's ~n^3/b + 1.5 n^2 for m=n (the paper loads only the
// diagonal triangle, ~b^2/2; this implementation loads the full diagonal
// block, so the diagonal term is n*m rather than n*m/2).
func PredictTRSM(n, m, blockSize int) (loadWords, storeWords int64) {
	N, M, b := int64(n), int64(m), int64(blockSize)
	nb, mb := N/b, M/b
	// Update pairs: for each (j,i), k ranges over i+1..nb-1.
	pairs := mb * nb * (nb - 1) / 2
	loadWords = N*M + pairs*2*b*b + nb*mb*b*b
	storeWords = N * M
	return loadWords, storeWords
}

// PredictTRSMNonWA returns the top-interface counts for OrderNonWA, where
// every B block above row k moves once per k:
//
//	stores = n*m/B * (avg row count) = (n/B+1)/2 * n*m ... computed exactly below.
func PredictTRSMNonWA(n, m, blockSize int) (loadWords, storeWords int64) {
	N, M, b := int64(n), int64(m), int64(blockSize)
	nb, mb := N/b, M/b
	pairs := mb * nb * (nb - 1) / 2                                          // one (load C, update, store C) per pair
	bMoves := mb*nb + pairs                                                  // diagonal solves + updates
	loadWords = bMoves*b*b /* C loads */ + pairs*2*b*b /* T,X */ + nb*mb*b*b /* diagonals */
	storeWords = bMoves * b * b
	return loadWords, storeWords
}
