package core

import (
	"testing"

	"writeavoid/internal/machine"
	"writeavoid/internal/matrix"
)

func qrMachine(m, b int, order Order) *machine.Hierarchy {
	need := int64(m*b + 2*b*b)
	if order == OrderNonWA {
		need = int64(2*m*b + 2*b*b)
	}
	return machine.TwoLevel(need)
}

func checkQR(t *testing.T, q, r, a *matrix.Dense, tag string) {
	t.Helper()
	// Q*R == A.
	if d := matrix.MaxAbsDiff(matrix.Mul(q, r), a); d > 1e-9 {
		t.Fatalf("%s: Q*R differs from A by %g", tag, d)
	}
	// Q^T Q == I.
	qtq := matrix.Mul(q.Transpose(), q)
	if d := matrix.MaxAbsDiff(qtq, matrix.Identity(q.Cols)); d > 1e-9 {
		t.Fatalf("%s: Q not orthonormal, deviation %g", tag, d)
	}
	// R upper triangular.
	for i := 0; i < r.Rows; i++ {
		for j := 0; j < i; j++ {
			if r.At(i, j) != 0 {
				t.Fatalf("%s: R(%d,%d) = %g below diagonal", tag, i, j, r.At(i, j))
			}
		}
	}
}

func TestQRCorrectBothOrders(t *testing.T) {
	m, n, b := 24, 16, 4
	for _, order := range []Order{OrderWA, OrderNonWA} {
		a := matrix.Random(m, n, 11)
		q := a.Clone()
		r := matrix.New(n, n)
		h := qrMachine(m, b, order)
		if err := QR(h, b, order, q, r); err != nil {
			t.Fatalf("%v: %v", order, err)
		}
		checkQR(t, q, r, a, order.String())
	}
}

func TestQRSquare(t *testing.T) {
	n, b := 16, 4
	a := matrix.Random(n, n, 12)
	q := a.Clone()
	r := matrix.New(n, n)
	h := qrMachine(n, b, OrderWA)
	if err := QR(h, b, OrderWA, q, r); err != nil {
		t.Fatal(err)
	}
	checkQR(t, q, r, a, "square")
}

func TestQRExactCounts(t *testing.T) {
	m, n, b := 24, 16, 4
	a := matrix.Random(m, n, 13)
	q := a.Clone()
	r := matrix.New(n, n)
	h := qrMachine(m, b, OrderWA)
	if err := QR(h, b, OrderWA, q, r); err != nil {
		t.Fatal(err)
	}
	wantL, wantS := PredictQR(m, n, b)
	got := h.Interface(0)
	if got.LoadWords != wantL || got.StoreWords != wantS {
		t.Fatalf("got (%d,%d) want (%d,%d)", got.LoadWords, got.StoreWords, wantL, wantS)
	}
	if !h.Theorem1Holds(0) || !h.ResidencyBalanced(0) {
		t.Fatal("model invariants violated")
	}
}

func TestQRLeftLookingWriteAvoiding(t *testing.T) {
	m, n, b := 32, 24, 4
	run := func(order Order) int64 {
		a := matrix.Random(m, n, 14)
		q := a.Clone()
		r := matrix.New(n, n)
		h := qrMachine(m, b, order)
		if err := QR(h, b, order, q, r); err != nil {
			t.Fatal(err)
		}
		return h.Interface(0).StoreWords
	}
	left, right := run(OrderWA), run(OrderNonWA)
	// Left-looking stores ~ output (Q plus R tiles).
	output := int64(m*n) + int64(n/b)*int64(n/b+1)/2*int64(b*b)
	if left > output {
		t.Fatalf("WA QR stores %d exceed output %d", left, output)
	}
	if right <= 2*left {
		t.Fatalf("right-looking should write much more: %d vs %d", right, left)
	}
}

func TestQRValidation(t *testing.T) {
	h := machine.TwoLevel(100)
	if err := QR(h, 4, OrderWA, matrix.Random(24, 16, 1), matrix.New(16, 16)); err == nil {
		t.Fatal("want panel-capacity error")
	}
	h2 := qrMachine(24, 4, OrderWA)
	if err := QR(h2, 4, OrderWA, matrix.Random(24, 16, 1), matrix.New(8, 8)); err == nil {
		t.Fatal("want R-shape error")
	}
	if err := QR(h2, 5, OrderWA, matrix.Random(24, 16, 1), matrix.New(16, 16)); err == nil {
		t.Fatal("want divisibility error")
	}
}

func TestQRRankDeficientPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	h := qrMachine(8, 4, OrderWA)
	QR(h, 4, OrderWA, matrix.New(8, 8), matrix.New(8, 8)) //nolint:errcheck
}
