package core

import (
	"testing"

	"writeavoid/internal/matrix"
)

func domMatrix(n int, seed uint64) *matrix.Dense {
	a := matrix.Random(n, n, seed)
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+float64(n)+2)
	}
	return a
}

func TestLUCorrectBothOrders(t *testing.T) {
	n := 16
	for _, order := range []Order{OrderWA, OrderNonWA} {
		a := domMatrix(n, 3)
		want := a.Clone()
		if err := matrix.LUInPlace(want); err != nil {
			t.Fatal(err)
		}
		p := planFor(4, order)
		if err := LU(p, a); err != nil {
			t.Fatalf("%v: %v", order, err)
		}
		if d := matrix.MaxAbsDiff(a, want); d > 1e-9 {
			t.Fatalf("%v: packed LU differs by %g", order, d)
		}
	}
}

func TestLUCorrectThreeLevel(t *testing.T) {
	n := 16
	a := domMatrix(n, 4)
	want := a.Clone()
	if err := matrix.LUInPlace(want); err != nil {
		t.Fatal(err)
	}
	p := plan3L(2, 8, OrderWA)
	if err := LU(p, a); err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxAbsDiff(a, want); d > 1e-9 {
		t.Fatalf("multi-level LU differs by %g", d)
	}
}

func TestLUFactorsReconstruct(t *testing.T) {
	n := 24
	a := domMatrix(n, 5)
	orig := a.Clone()
	p := planFor(4, OrderWA)
	if err := LU(p, a); err != nil {
		t.Fatal(err)
	}
	l, u := matrix.SplitLU(a)
	if d := matrix.MaxAbsDiff(matrix.Mul(l, u), orig); d > 1e-8 {
		t.Fatalf("L*U residual %g", d)
	}
}

func TestLUExactCounts(t *testing.T) {
	n, b := 16, 4
	p := planFor(b, OrderWA)
	a := domMatrix(n, 6)
	if err := LU(p, a); err != nil {
		t.Fatal(err)
	}
	wantL, wantS := PredictLU(n, b)
	got := p.H.Interface(0)
	if got.LoadWords != wantL || got.StoreWords != wantS {
		t.Fatalf("got (%d,%d) want (%d,%d)", got.LoadWords, got.StoreWords, wantL, wantS)
	}
	if got.StoreWords != int64(n*n) {
		t.Fatalf("WA LU must store exactly the matrix once: %d vs %d", got.StoreWords, n*n)
	}
}

func TestLURightLookingWritesMore(t *testing.T) {
	n, b := 24, 4
	run := func(order Order) int64 {
		p := planFor(b, order)
		a := domMatrix(n, 7)
		if err := LU(p, a); err != nil {
			t.Fatal(err)
		}
		return p.H.Interface(0).StoreWords
	}
	left, right := run(OrderWA), run(OrderNonWA)
	if left != int64(n*n) {
		t.Fatalf("left-looking stores %d want %d", left, n*n)
	}
	if right <= 2*left {
		t.Fatalf("right-looking should write much more: %d vs %d", right, left)
	}
}

func TestLUZeroPivotPropagates(t *testing.T) {
	a := matrix.New(8, 8)
	p := planFor(4, OrderWA)
	if err := LU(p, a); err == nil {
		t.Fatal("want zero-pivot error")
	}
}

func TestLUModelInvariants(t *testing.T) {
	p := planFor(4, OrderWA)
	a := domMatrix(16, 8)
	if err := LU(p, a); err != nil {
		t.Fatal(err)
	}
	if !p.H.Theorem1Holds(0) || !p.H.ResidencyBalanced(0) {
		t.Fatal("model invariants violated")
	}
}
