package core

import (
	"writeavoid/internal/access"
)

// Element-granularity trace emitters for the remaining Proposition 6.2
// kernels: blocked TRSM (Algorithm 2 order), left-looking blocked Cholesky
// (Algorithm 3 order), and the blocked direct (N,2)-body (Algorithm 4
// order). Replayed through a fully-associative LRU cache with five blocks
// resident, each writes back exactly its output — the Prop 6.2 statement.

// TRSMTrace traces the two-level blocked triangular solve T*X = B
// (T n x n upper, B n x m, X overwrites B) in the write-avoiding order.
type TRSMTrace struct {
	N, M, Block int
	T, B        access.Region
}

// NewTRSMTrace lays out T and B in a fresh address space.
func NewTRSMTrace(n, m, block, lineBytes int) *TRSMTrace {
	lay := access.NewLayout(uint64(lineBytes))
	return &TRSMTrace{N: n, M: m, Block: block, T: lay.NewRegion(n, n), B: lay.NewRegion(n, m)}
}

// Run emits the access stream.
func (t *TRSMTrace) Run(sink access.Sink) {
	b := t.Block
	nb, mb := ceilDiv(t.N, b), ceilDiv(t.M, b)
	for j := 0; j < mb; j++ {
		jw := min(b, t.M-j*b)
		for i := nb - 1; i >= 0; i-- {
			iw := min(b, t.N-i*b)
			// Updates: B(i,j) -= T(i,k) * X(k,j), k > i.
			for k := i + 1; k < nb; k++ {
				kw := min(b, t.N-k*b)
				for r := 0; r < iw; r++ {
					for c := 0; c < jw; c++ {
						sink.Access(t.B.Addr(i*b+r, j*b+c), false)
						for x := 0; x < kw; x++ {
							sink.Access(t.T.Addr(i*b+r, k*b+x), false)
							sink.Access(t.B.Addr(k*b+x, j*b+c), false)
						}
						sink.Access(t.B.Addr(i*b+r, j*b+c), true)
					}
				}
			}
			// Diagonal solve with T(i,i): back substitution within
			// the block.
			for c := 0; c < jw; c++ {
				for r := iw - 1; r >= 0; r-- {
					sink.Access(t.B.Addr(i*b+r, j*b+c), false)
					for x := r + 1; x < iw; x++ {
						sink.Access(t.T.Addr(i*b+r, i*b+x), false)
						sink.Access(t.B.Addr(i*b+x, j*b+c), false)
					}
					sink.Access(t.T.Addr(i*b+r, i*b+r), false)
					sink.Access(t.B.Addr(i*b+r, j*b+c), true)
				}
			}
		}
	}
}

// CholeskyTrace traces the two-level left-looking blocked Cholesky
// (Algorithm 3 order) on an n x n SPD matrix.
type CholeskyTrace struct {
	N, Block int
	A        access.Region
}

// NewCholeskyTrace lays out A in a fresh address space.
func NewCholeskyTrace(n, block, lineBytes int) *CholeskyTrace {
	lay := access.NewLayout(uint64(lineBytes))
	return &CholeskyTrace{N: n, Block: block, A: lay.NewRegion(n, n)}
}

// Run emits the access stream.
func (t *CholeskyTrace) Run(sink access.Sink) {
	b := t.Block
	nb := ceilDiv(t.N, b)
	bw := func(i int) int { return min(b, t.N-i*b) }

	// kernelSubABt streams C(ci,cj) -= A(ai,k) * A(bi,k)^T at element
	// granularity (each C element register-accumulated per call).
	kernelSubABt := func(ci, cj, ai, bi, k, rows, cols, inner int) {
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				sink.Access(t.A.Addr(ci*b+r, cj*b+c), false)
				for x := 0; x < inner; x++ {
					sink.Access(t.A.Addr(ai*b+r, k*b+x), false)
					sink.Access(t.A.Addr(bi*b+c, k*b+x), false)
				}
				sink.Access(t.A.Addr(ci*b+r, cj*b+c), true)
			}
		}
	}

	for i := 0; i < nb; i++ {
		iw := bw(i)
		// Diagonal: A(i,i) -= sum_k A(i,k) A(i,k)^T, then factor.
		for k := 0; k < i; k++ {
			kw := bw(k)
			for r := 0; r < iw; r++ {
				for c := 0; c <= r; c++ {
					sink.Access(t.A.Addr(i*b+r, i*b+c), false)
					for x := 0; x < kw; x++ {
						sink.Access(t.A.Addr(i*b+r, k*b+x), false)
						sink.Access(t.A.Addr(i*b+c, k*b+x), false)
					}
					sink.Access(t.A.Addr(i*b+r, i*b+c), true)
				}
			}
		}
		// In-block factorization (lower triangle).
		for c := 0; c < iw; c++ {
			for r := c; r < iw; r++ {
				sink.Access(t.A.Addr(i*b+r, i*b+c), false)
				for x := 0; x < c; x++ {
					sink.Access(t.A.Addr(i*b+r, i*b+x), false)
					sink.Access(t.A.Addr(i*b+c, i*b+x), false)
				}
				sink.Access(t.A.Addr(i*b+r, i*b+c), true)
			}
		}
		// Off-diagonal block column: updates then TRSM with A(i,i).
		for j := i + 1; j < nb; j++ {
			jw := bw(j)
			for k := 0; k < i; k++ {
				kernelSubABt(j, i, j, i, k, jw, iw, bw(k))
			}
			// TRSM: solve Tmp * A(i,i)^T = A(j,i) column by column.
			for r := 0; r < jw; r++ {
				for c := 0; c < iw; c++ {
					sink.Access(t.A.Addr(j*b+r, i*b+c), false)
					for x := 0; x < c; x++ {
						sink.Access(t.A.Addr(j*b+r, i*b+x), false)
						sink.Access(t.A.Addr(i*b+c, i*b+x), false)
					}
					sink.Access(t.A.Addr(i*b+c, i*b+c), false)
					sink.Access(t.A.Addr(j*b+r, i*b+c), true)
				}
			}
		}
	}
}

// NBodyTrace traces the two-level blocked direct (N,2)-body (Algorithm 4):
// particle and force arrays of N one-word elements.
type NBodyTrace struct {
	N, Block int
	P, F     access.Region
}

// NewNBodyTrace lays out the particle and force arrays.
func NewNBodyTrace(n, block, lineBytes int) *NBodyTrace {
	lay := access.NewLayout(uint64(lineBytes))
	return &NBodyTrace{N: n, Block: block, P: lay.NewRegion(1, n), F: lay.NewRegion(1, n)}
}

// Run emits the access stream.
func (t *NBodyTrace) Run(sink access.Sink) {
	b := t.Block
	for i0 := 0; i0 < t.N; i0 += b {
		ih := min(b, t.N-i0)
		// F block initialized in place (writes), P1 block read.
		for i := 0; i < ih; i++ {
			sink.Access(t.F.Addr(0, i0+i), true)
			sink.Access(t.P.Addr(0, i0+i), false)
		}
		for j0 := 0; j0 < t.N; j0 += b {
			jh := min(b, t.N-j0)
			for i := 0; i < ih; i++ {
				sink.Access(t.F.Addr(0, i0+i), false)
				sink.Access(t.P.Addr(0, i0+i), false)
				for j := 0; j < jh; j++ {
					sink.Access(t.P.Addr(0, j0+j), false)
				}
				sink.Access(t.F.Addr(0, i0+i), true)
			}
		}
	}
}
