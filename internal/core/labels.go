package core

import (
	"strconv"

	"writeavoid/internal/machine"
)

// Interned span-label families for the hot loops: the drivers emit one span
// per output block / panel / contraction step, and the same indices recur
// run after run, so each label is formatted exactly once per process and the
// steady-state label path allocates nothing (the zero-alloc half of the
// batched engine's hot-path contract; the labels are shared across Plans).
var (
	panelLabels = machine.NewSpanLabels(func(i int) string { return "panel " + strconv.Itoa(i) })
	kLabels     = machine.NewSpanLabels(func(k int) string { return "k=" + strconv.Itoa(k) })
	cBlockLabels = machine.NewSpanLabels2(func(i, j int) string {
		return "C[" + strconv.Itoa(i) + "," + strconv.Itoa(j) + "]"
	})
	bBlockLabels = machine.NewSpanLabels2(func(i, j int) string {
		return "B[" + strconv.Itoa(i) + "," + strconv.Itoa(j) + "]"
	})
)
