package core_test

import (
	"fmt"

	"writeavoid/internal/core"
	"writeavoid/internal/matrix"
)

// The headline result of the paper's Section 4: with the contraction loop
// innermost, the blocked multiplication writes slow memory exactly once per
// output word, matching the closed form stores = m*l, loads = ml + 2mnl/b.
func ExampleMatMul() {
	const n, b = 32, 8
	plan := core.TwoLevelPlan(3*b*b, b, core.OrderWA)
	c := matrix.New(n, n)
	if err := core.MatMul(plan, c, matrix.Random(n, n, 1), matrix.Random(n, n, 2)); err != nil {
		panic(err)
	}
	counters := plan.H.Interface(0)
	fmt.Printf("loads=%d stores=%d output=%d\n", counters.LoadWords, counters.StoreWords, n*n)
	// Output: loads=9216 stores=1024 output=1024
}

// Flipping the loop order keeps the algorithm communication-avoiding but
// multiplies the writes by n/b.
func ExampleMatMul_loopOrder() {
	const n, b = 32, 8
	for _, order := range []core.Order{core.OrderWA, core.OrderNonWA} {
		plan := core.TwoLevelPlan(3*b*b, b, order)
		c := matrix.New(n, n)
		if err := core.MatMul(plan, c, matrix.Random(n, n, 1), matrix.Random(n, n, 2)); err != nil {
			panic(err)
		}
		fmt.Printf("%s stores=%d\n", order, plan.H.Interface(0).StoreWords)
	}
	// Output:
	// WA stores=1024
	// nonWA stores=4096
}

// Left-looking Cholesky stores exactly the lower triangle.
func ExampleCholesky() {
	const n, b = 16, 4
	plan := core.TwoLevelPlan(3*b*b, b, core.OrderWA)
	a := matrix.RandomSPD(n, 7)
	if err := core.Cholesky(plan, a); err != nil {
		panic(err)
	}
	fmt.Printf("stores=%d triangle=%d\n", plan.H.Interface(0).StoreWords, 0+
		// block-triangle output: T diagonal triangles + off-diagonal blocks
		int64(n/b)*int64(b*(b+1)/2)+int64(n/b)*int64(n/b-1)/2*int64(b*b))
	// Output: stores=136 triangle=136
}
