package core

import (
	"writeavoid/internal/intmath"
	"writeavoid/internal/machine"
	"writeavoid/internal/matrix"
)

// gemmMode distinguishes the three GEMM flavors the Section 4 algorithms
// need. All three share the same blocking structure and traffic counts.
type gemmMode int

const (
	modeAddAB       gemmMode = iota // C += A*B   (Algorithm 1)
	modeSubAB                       // C -= A*B   (TRSM updates)
	modeSubABt                      // C -= A*B^T (Cholesky SYRK/GEMM updates)
	modeSubABtLower                 // lower triangle of C -= A*B^T (Cholesky diagonal SYRK)
)

// MatMul computes C += A*B with the plan's blocking and loop order,
// computing the true product while driving the plan's hierarchy counters.
// For Order==OrderWA this is the paper's Algorithm 1 generalized to
// arbitrarily many levels.
func MatMul(p *Plan, c, a, b *matrix.Dense) error {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		return errShape("MatMul", c, a, b)
	}
	if err := p.validate(c.Rows, c.Cols, a.Cols); err != nil {
		return err
	}
	gemmLevel(p, p.topInterface(), c, a, b, modeAddAB)
	return nil
}

// gemmLevel multiplies at recursion depth s (an interface index); s == -1 is
// the in-fast-memory kernel. Operand shapes per mode:
//
//	modeAddAB/modeSubAB: C(m,l) op A(m,n)*B(n,l), blocks B(k,j)
//	modeSubABt:          C(m,l) -= A(m,n)*B(l,n)^T, blocks B(j,k)
func gemmLevel(p *Plan, s int, c, a, b *matrix.Dense, mode gemmMode) {
	if s < 0 {
		gemmKernel(p, c, a, b, mode)
		return
	}
	bs := p.BlockSizes[s]
	m, l, n := c.Rows, c.Cols, a.Cols
	mb, lb, nb := intmath.CeilDiv(m, bs), intmath.CeilDiv(l, bs), intmath.CeilDiv(n, bs)

	blkA := func(i, k int) *matrix.Dense {
		return a.Block(i*bs, k*bs, min(bs, m-i*bs), min(bs, n-k*bs))
	}
	blkB := func(k, j int) *matrix.Dense {
		if mode == modeSubABt || mode == modeSubABtLower {
			return b.Block(j*bs, k*bs, min(bs, l-j*bs), min(bs, n-k*bs))
		}
		return b.Block(k*bs, j*bs, min(bs, n-k*bs), min(bs, l-j*bs))
	}
	blkC := func(i, j int) *matrix.Dense {
		return c.Block(i*bs, j*bs, min(bs, m-i*bs), min(bs, l-j*bs))
	}

	step := func(i, j, k int) {
		// The triangular mode keeps the full block loops (so the staged
		// word counts are identical to modeSubABt at every interface) and
		// narrows to the triangle only for diagonal sub-blocks of C.
		sub := mode
		if mode == modeSubABtLower && i != j {
			sub = modeSubABt
		}
		ab, bb, cb := blkA(i, k), blkB(k, j), blkC(i, j)
		p.H.Load(s, words(ab))
		p.note(s, ab, false)
		p.H.Load(s, words(bb))
		p.note(s, bb, false)
		gemmLevel(p, s-1, cb, ab, bb, sub)
		p.H.Discard(s, words(ab))
		p.H.Discard(s, words(bb))
	}

	mark := p.marking(s)
	switch p.orderAt(s) {
	case OrderWA:
		// Algorithm 1: the contraction loop k is innermost, so each C
		// block is loaded and stored exactly once.
		for i := 0; i < mb; i++ {
			for j := 0; j < lb; j++ {
				if mark {
					p.H.Begin(cBlockLabels.Get(i, j))
				}
				cb := blkC(i, j)
				p.H.Load(s, words(cb))
				p.note(s, cb, false)
				for k := 0; k < nb; k++ {
					step(i, j, k)
				}
				p.H.Store(s, words(cb))
				p.note(s, cb, true)
				if mark {
					p.H.End()
				}
			}
		}
	case OrderNonWA:
		// Same blocked algorithm with k outermost: still CA, but each
		// C block is re-loaded and re-stored n/b times.
		for k := 0; k < nb; k++ {
			if mark {
				p.H.Begin(kLabels.Get(k))
			}
			for i := 0; i < mb; i++ {
				for j := 0; j < lb; j++ {
					cb := blkC(i, j)
					p.H.Load(s, words(cb))
					p.note(s, cb, false)
					step(i, j, k)
					p.H.Store(s, words(cb))
					p.note(s, cb, true)
				}
			}
			if mark {
				p.H.End()
			}
		}
	}
}

// gemmKernel is the base case: the operands are resident in the fastest
// level, so only arithmetic happens (plus per-element trace emission when the
// plan carries a Tracer).
func gemmKernel(p *Plan, c, a, b *matrix.Dense, mode gemmMode) {
	tr := p.Trace
	switch mode {
	case modeAddAB:
		if tr != nil {
			tr.MulAdd(c, a, b)
		} else {
			matrix.MulAdd(c, a, b)
		}
		p.H.Flops(2 * int64(c.Rows) * int64(c.Cols) * int64(a.Cols))
	case modeSubAB:
		if tr != nil {
			tr.MulSub(c, a, b)
		} else {
			matrix.MulSub(c, a, b)
		}
		p.H.Flops(2 * int64(c.Rows) * int64(c.Cols) * int64(a.Cols))
	case modeSubABt:
		if tr != nil {
			tr.MulSubTrans(c, a, b)
		} else {
			matrix.MulSubTrans(c, a, b)
		}
		p.H.Flops(2 * int64(c.Rows) * int64(c.Cols) * int64(a.Cols))
	case modeSubABtLower:
		if tr != nil {
			tr.MulSubTransLower(c, a, b)
		} else {
			matrix.MulSubTransLower(c, a, b)
		}
		// 2 flops per term over the n(n+1)/2 triangle elements.
		p.H.Flops(int64(c.Rows) * int64(c.Rows+1) * int64(a.Cols))
	}
}

// MatMulSub computes C -= A*B with the same blocking and counting as MatMul.
func MatMulSub(p *Plan, c, a, b *matrix.Dense) error {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		return errShape("MatMulSub", c, a, b)
	}
	if err := p.validate(c.Rows, c.Cols, a.Cols); err != nil {
		return err
	}
	gemmLevel(p, p.topInterface(), c, a, b, modeSubAB)
	return nil
}

// SYRK computes C -= A*A^T (the symmetric rank-k update Cholesky's diagonal
// path uses), blocked and counted like MatMul; both triangles of C are
// updated.
func SYRK(p *Plan, c, a *matrix.Dense) error {
	if c.Rows != a.Rows || c.Cols != a.Rows {
		return errShape("SYRK", c, a, a)
	}
	if err := p.validate(c.Rows, a.Cols); err != nil {
		return err
	}
	gemmLevel(p, p.topInterface(), c, a, a, modeSubABt)
	return nil
}

// MatMulNaive computes C += A*B with the unblocked three-nested-loop
// algorithm the paper's introduction dismisses: it minimizes writes to slow
// memory (the output is written once) but maximizes reads (it is not CA).
// Each dot product streams a row of A and a column of B through fast memory.
func MatMulNaive(h2 *machine.Hierarchy, c, a, b *matrix.Dense) {
	m, l, n := c.Rows, c.Cols, a.Cols
	for i := 0; i < m; i++ {
		for j := 0; j < l; j++ {
			h2.Init(0, 1) // accumulator for C(i,j) (R2 residency)
			s := c.At(i, j)
			for k := 0; k < n; k++ {
				h2.Load(0, 2) // A(i,k) and B(k,j)
				s += a.At(i, k) * b.At(k, j)
				h2.Discard(0, 2)
			}
			c.Set(i, j, s)
			h2.Flops(2 * int64(n))
			h2.Store(0, 1)
		}
	}
}

// MatMulCounts is the exact traffic prediction for the blocked GEMM at every
// interface of a plan, matching gemmLevel word for word. Top-level dims are
// (m x n) * (n x l); all dims must be multiples of the coarsest block, and
// block sizes must nest evenly (the same preconditions as MatMul).
type MatMulCounts struct {
	LoadWords  []int64 // per interface
	StoreWords []int64
	LoadMsgs   []int64
	StoreMsgs  []int64
}

// PredictMatMul returns the closed-form counts for OrderWA. For the top
// interface t with block B = bs[t]:
//
//	loads  = m*l + 2*m*n*l/B      stores = m*l
//
// and for each finer interface s < t, whose level is entered once per
// bs[s+1]-cube:
//
//	loads  = m*n*l/bs[s+1] + 2*m*n*l/bs[s]    stores = m*n*l/bs[s+1]
func PredictMatMul(m, n, l int, blockSizes []int) MatMulCounts {
	t := len(blockSizes) - 1
	mc := MatMulCounts{
		LoadWords:  make([]int64, t+1),
		StoreWords: make([]int64, t+1),
		LoadMsgs:   make([]int64, t+1),
		StoreMsgs:  make([]int64, t+1),
	}
	M, N, L := int64(m), int64(n), int64(l)
	for s := t; s >= 0; s-- {
		b := int64(blockSizes[s])
		if s == t {
			mc.LoadWords[s] = M*L + 2*M*N*L/b
			mc.StoreWords[s] = M * L
			mc.LoadMsgs[s] = (M / b) * (L / b) * (1 + 2*(N/b))
			mc.StoreMsgs[s] = (M / b) * (L / b)
		} else {
			B := int64(blockSizes[s+1]) // cube edge at this depth
			calls := M * N * L / (B * B * B)
			perCallLoadW := B*B + 2*B*B*B/b
			perCallLoadM := (B / b) * (B / b) * (1 + 2*(B/b))
			mc.LoadWords[s] = calls * perCallLoadW
			mc.StoreWords[s] = calls * B * B
			mc.LoadMsgs[s] = calls * perCallLoadM
			mc.StoreMsgs[s] = calls * (B / b) * (B / b)
		}
	}
	return mc
}

// PredictMatMulNonWA returns the top-interface counts for OrderNonWA, where
// every C block moves once per contraction step:
//
//	loads = m*n*l/B (C) + 2*m*n*l/B (A,B)    stores = m*n*l/B
func PredictMatMulNonWA(m, n, l, blockSize int) (loadWords, storeWords int64) {
	M, N, L, b := int64(m), int64(n), int64(l), int64(blockSize)
	return 3 * M * N * L / b, M * N * L / b
}

func words(m *matrix.Dense) int64 { return int64(m.Rows) * int64(m.Cols) }

func errShape(op string, c, a, b *matrix.Dense) error {
	return &ShapeError{Op: op, CR: c.Rows, CC: c.Cols, AR: a.Rows, AC: a.Cols, BR: b.Rows, BC: b.Cols}
}

// ShapeError reports incompatible operand shapes.
type ShapeError struct {
	Op                     string
	CR, CC, AR, AC, BR, BC int
}

func (e *ShapeError) Error() string {
	return e.Op + ": incompatible shapes"
}
