package core

import (
	"writeavoid/internal/access"
	"writeavoid/internal/intmath"
)

// COMatMulTrace is the cache-oblivious recursive order of Figure 2a (Frigo et
// al.): split the largest of the three dimensions in half, recurse, and run
// the element kernel below a base threshold. Splitting the contraction
// dimension executes the two halves in sequence on the same C block. Unlike
// the blocked traces, this order has no counted-driver twin (there is no
// explicit staging to count), so it remains a standalone emitter.
type COMatMulTrace struct {
	M, N, L int
	Base    int
	A, B, C access.Region
}

// NewCOMatMulTrace lays out the operands in a fresh address space.
func NewCOMatMulTrace(m, n, l, base, lineBytes int) *COMatMulTrace {
	lay := access.NewLayout(uint64(lineBytes))
	return &COMatMulTrace{
		M: m, N: n, L: l, Base: base,
		A: lay.NewRegion(m, n),
		B: lay.NewRegion(n, l),
		C: lay.NewRegion(m, l),
	}
}

// Run emits the access stream.
func (t *COMatMulTrace) Run(sink access.Sink) {
	t.rec(sink, 0, 0, 0, t.M, t.L, t.N)
}

func (t *COMatMulTrace) rec(sink access.Sink, ci, cj, ck, m, l, n int) {
	if m <= t.Base && l <= t.Base && n <= t.Base {
		for i := 0; i < m; i++ {
			for j := 0; j < l; j++ {
				sink.Access(t.C.Addr(ci+i, cj+j), false)
				for k := 0; k < n; k++ {
					sink.Access(t.A.Addr(ci+i, ck+k), false)
					sink.Access(t.B.Addr(ck+k, cj+j), false)
				}
				sink.Access(t.C.Addr(ci+i, cj+j), true)
			}
		}
		return
	}
	switch {
	case m >= l && m >= n:
		h := m / 2
		t.rec(sink, ci, cj, ck, h, l, n)
		t.rec(sink, ci+h, cj, ck, m-h, l, n)
	case l >= n:
		h := l / 2
		t.rec(sink, ci, cj, ck, m, h, n)
		t.rec(sink, ci, cj+h, ck, m, l-h, n)
	default:
		h := n / 2
		t.rec(sink, ci, cj, ck, m, l, h)
		t.rec(sink, ci, cj, ck+h, m, l, n-h)
	}
}

// IdealCacheMisses is the Frigo et al. ideal-cache miss estimate for the
// cache-oblivious multiplication — the "Misses on Ideal Cache" reference line
// of Figure 2a — in cache lines:
//
//	( m*n*ceil(l/s) + l*n*ceil(m/s) + l*m*ceil(n/s) ) * elemBytes/lineBytes
//
// with s = sqrt(M/(3*elemBytes)) the largest square tile edge fitting in a
// cache of M bytes.
func IdealCacheMisses(l, m, n int, cacheBytes, lineBytes int) int64 {
	s := intmath.Isqrt(int64(cacheBytes) / (3 * 8))
	if s < 1 {
		s = 1
	}
	ceil := func(a int) int64 { return int64((a + s - 1) / s) }
	elems := int64(m)*int64(n)*ceil(l) + int64(l)*int64(n)*ceil(m) + int64(l)*int64(m)*ceil(n)
	return elems * 8 / int64(lineBytes)
}
