package core

import (
	"fmt"

	"writeavoid/internal/intmath"

	"writeavoid/internal/matrix"
)

// Cholesky factors the SPD matrix A in place into its lower-triangular
// Cholesky factor (A = L*L^T; the strict upper triangle is left untouched,
// mirroring the paper's "only lower triangle of A is accessed").
//
// OrderWA is the paper's left-looking Algorithm 3: each block column of L is
// completely computed by reading the blocks to its left and is written to
// slow memory exactly once, giving ~n^2/2 writes. OrderNonWA is the
// right-looking variant, which updates the whole trailing Schur complement
// after each block column and therefore re-writes every trailing block per
// step, for Θ(n^3/b) writes.
func Cholesky(p *Plan, a *matrix.Dense) error {
	if a.Rows != a.Cols {
		return errShape("Cholesky", a, a, a)
	}
	if err := p.validate(a.Rows); err != nil {
		return err
	}
	switch p.Order {
	case OrderWA:
		return cholLeftLevel(p, p.topInterface(), a)
	default:
		return cholRightLevel(p, p.topInterface(), a)
	}
}

// triWords is the number of words in the lower triangle (incl. diagonal) of
// a b-by-b block; the paper's ".5 b^2".
func triWords(b int) int64 { return int64(b) * int64(b+1) / 2 }

func cholLeftLevel(p *Plan, s int, a *matrix.Dense) error {
	if s < 0 {
		if err := cholKernel(p, a); err != nil {
			return err
		}
		n := int64(a.Rows)
		p.H.Flops(n * n * n / 3)
		return nil
	}
	bs := p.BlockSizes[s]
	n := a.Rows
	nb := intmath.CeilDiv(n, bs)
	blk := func(i, k int) *matrix.Dense {
		return a.Block(i*bs, k*bs, min(bs, n-i*bs), min(bs, n-k*bs))
	}

	mark := p.marking(s)
	for i := 0; i < nb; i++ {
		if mark {
			p.H.Begin(panelLabels.Get(i))
			p.H.Begin("factor")
		}
		// Diagonal block: load the lower half, subtract the row of
		// outer products to its left, factor, store the lower half.
		di := blk(i, i)
		p.H.Load(s, triWords(di.Rows))
		p.noteLower(s, di, false)
		for k := 0; k < i; k++ {
			ak := blk(i, k)
			p.H.Load(s, words(ak))
			p.note(s, ak, false)
			// A(i,i) -= A(i,k)*A(i,k)^T (SYRK, lower triangle only: the
			// factorization never reads above the diagonal)
			gemmLevel(p, s-1, di, ak, ak, modeSubABtLower)
			p.H.Discard(s, words(ak))
		}
		if err := cholLeftLevel(p, s-1, di); err != nil {
			return fmt.Errorf("core: Cholesky pivot block %d: %w", i, err)
		}
		p.H.Store(s, triWords(di.Rows))
		p.noteLower(s, di, true)
		if mark {
			p.H.End()
			p.H.Begin("trsm")
		}

		// Off-diagonal blocks of block column i, fully computed
		// left-looking and stored once each.
		for j := i + 1; j < nb; j++ {
			ji := blk(j, i)
			p.H.Load(s, words(ji))
			p.note(s, ji, false)
			for k := 0; k < i; k++ {
				aik, ajk := blk(i, k), blk(j, k)
				p.H.Load(s, words(aik))
				p.note(s, aik, false)
				p.H.Load(s, words(ajk))
				p.note(s, ajk, false)
				// A(j,i) -= A(j,k)*A(i,k)^T
				gemmLevel(p, s-1, ji, ajk, aik, modeSubABt)
				p.H.Discard(s, words(aik))
				p.H.Discard(s, words(ajk))
			}
			// Solve Tmp * A(i,i)^T = A(j,i); A(i,i) now holds L(i,i).
			p.H.Load(s, triWords(di.Rows))
			p.noteLower(s, di, false)
			trsmRightLevel(p, s-1, di, ji)
			p.H.Discard(s, triWords(di.Rows))
			p.H.Store(s, words(ji))
			p.note(s, ji, true)
		}
		if mark {
			p.H.End()
			p.H.End()
		}
	}
	return nil
}

// cholKernel is the shared base case: the in-fast-memory factorization,
// traced when the plan carries a Tracer.
func cholKernel(p *Plan, a *matrix.Dense) error {
	if p.Trace != nil {
		return p.Trace.CholeskyInPlace(a)
	}
	return matrix.CholeskyInPlace(a)
}

func cholRightLevel(p *Plan, s int, a *matrix.Dense) error {
	if s < 0 {
		if err := cholKernel(p, a); err != nil {
			return err
		}
		n := int64(a.Rows)
		p.H.Flops(n * n * n / 3)
		return nil
	}
	bs := p.BlockSizes[s]
	n := a.Rows
	nb := intmath.CeilDiv(n, bs)
	blk := func(i, k int) *matrix.Dense {
		return a.Block(i*bs, k*bs, min(bs, n-i*bs), min(bs, n-k*bs))
	}

	mark := p.marking(s)
	for i := 0; i < nb; i++ {
		if mark {
			p.H.Begin(panelLabels.Get(i))
			p.H.Begin("factor")
		}
		di := blk(i, i)
		p.H.Load(s, triWords(di.Rows))
		p.noteLower(s, di, false)
		if err := cholRightLevel(p, s-1, di); err != nil {
			return fmt.Errorf("core: Cholesky pivot block %d: %w", i, err)
		}
		// Panel below the diagonal.
		for j := i + 1; j < nb; j++ {
			ji := blk(j, i)
			p.H.Load(s, words(ji))
			p.note(s, ji, false)
			trsmRightLevel(p, s-1, di, ji)
			p.H.Store(s, words(ji))
			p.note(s, ji, true)
		}
		p.H.Store(s, triWords(di.Rows))
		p.noteLower(s, di, true)
		if mark {
			p.H.End()
			p.H.Begin("update")
		}
		// Right-looking Schur-complement update: every trailing block
		// is loaded, updated by one product, and stored again — the
		// write-amplifying pattern the paper warns about.
		for j := i + 1; j < nb; j++ {
			ji := blk(j, i)
			p.H.Load(s, words(ji))
			p.note(s, ji, false)
			for k := i + 1; k <= j; k++ {
				ki := blk(k, i)
				p.H.Load(s, words(ki))
				p.note(s, ki, false)
				tb := blk(j, k)
				w, mode := words(tb), modeSubABt
				if k == j {
					w, mode = triWords(tb.Rows), modeSubABtLower
				}
				p.H.Load(s, w)
				p.noteSized(s, tb, k == j, false)
				// A(j,k) -= A(j,i)*A(k,i)^T  (lower triangle only on the diagonal)
				gemmLevel(p, s-1, tb, ji, ki, mode)
				p.H.Store(s, w)
				p.noteSized(s, tb, k == j, true)
				p.H.Discard(s, words(ki))
			}
			p.H.Discard(s, words(ji))
		}
		if mark {
			p.H.End()
			p.H.End()
		}
	}
	return nil
}

// trsmRightLevel solves Tmp * L^T = B for Tmp, overwriting B, where L is
// lower triangular; this is the TRSM flavor Cholesky needs (paper line 16 of
// Algorithm 3). Blocked with the k-innermost (WA) order.
func trsmRightLevel(p *Plan, s int, l, b *matrix.Dense) {
	if s < 0 {
		if p.Trace != nil {
			p.Trace.TRSMLowerTransRight(l, b)
		} else {
			matrix.TRSMLowerTransRight(l, b)
		}
		p.H.Flops(int64(b.Rows) * int64(l.Rows) * int64(l.Rows))
		return
	}
	bs := p.BlockSizes[s]
	n, m := l.Rows, b.Rows
	nb, mb := intmath.CeilDiv(n, bs), intmath.CeilDiv(m, bs)
	blkL := func(i, k int) *matrix.Dense {
		return l.Block(i*bs, k*bs, min(bs, n-i*bs), min(bs, n-k*bs))
	}
	blkB := func(i, j int) *matrix.Dense {
		return b.Block(i*bs, j*bs, min(bs, m-i*bs), min(bs, n-j*bs))
	}
	for i := 0; i < mb; i++ {
		for j := 0; j < nb; j++ {
			bb := blkB(i, j)
			p.H.Load(s, words(bb))
			for k := 0; k < j; k++ {
				xk, lk := blkB(i, k), blkL(j, k)
				p.H.Load(s, words(xk))
				p.H.Load(s, words(lk))
				// B(i,j) -= X(i,k) * L(j,k)^T
				gemmLevel(p, s-1, bb, xk, lk, modeSubABt)
				p.H.Discard(s, words(xk))
				p.H.Discard(s, words(lk))
			}
			lj := blkL(j, j)
			p.H.Load(s, words(lj))
			trsmRightLevel(p, s-1, lj, bb)
			p.H.Discard(s, words(lj))
			p.H.Store(s, words(bb))
		}
	}
}

// PredictCholesky returns the exact OrderWA (left-looking) top-interface
// counts for an n-by-n factorization with block size B (T = n/B block rows,
// tri = B(B+1)/2 words in a diagonal triangle):
//
//	stores = T*tri + B^2*T(T-1)/2            (~ n^2/2: the output, once)
//	loads  = T*tri                            diagonal triangles
//	       + B^2*T(T-1)/2                     SYRK operands
//	       + B^2*T(T-1)/2                     off-diagonal C blocks
//	       + 2*B^2*(T choose 2 pairs summed)  GEMM operand pairs
//	       + tri*T(T-1)/2                     diagonal re-loads for TRSM
func PredictCholesky(n, blockSize int) (loadWords, storeWords int64) {
	b := int64(blockSize)
	t := int64(n) / b
	tri := b * (b + 1) / 2
	gemmPairs := int64(0) // Σ_{i<T} Σ_{j>i..T-1} i  = Σ_i i*(T-1-i)
	for i := int64(0); i < t; i++ {
		gemmPairs += i * (t - 1 - i)
	}
	syrkBlocks := t * (t - 1) / 2 // Σ_i i
	offDiag := t * (t - 1) / 2
	loadWords = t*tri + b*b*syrkBlocks + b*b*offDiag + 2*b*b*gemmPairs + tri*offDiag
	storeWords = t*tri + b*b*offDiag
	return loadWords, storeWords
}
