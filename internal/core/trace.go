package core

import (
	"writeavoid/internal/access"
)

// This file contains the element-granularity address-trace emitters behind
// the Section 6 experiments (Figures 2 and 5): the same blocked matrix
// multiplication instruction orders as Figure 4 of the paper, but instead of
// driving explicit Load/Store counters they emit every element access so a
// simulated cache with a real replacement policy (internal/cache) decides
// what moves.
//
// The emitters do not compute; they only generate the access stream, which
// is what the hardware counters of the paper observe.

// TraceLevel is one level of blocking in a traced matmul.
type TraceLevel struct {
	// Block is the tile edge at this level.
	Block int
	// ContractionInner selects the loop order: true is the write-avoiding
	// order of the paper's Fig. 4a WAMatMul (output-block loops outside,
	// contraction innermost); false is Fig. 4b's ABMatMul order
	// (contraction outermost).
	ContractionInner bool
}

// MatMulTrace describes a traced multiplication C(m×l) += A(m×n)*B(n×l),
// with blocking levels ordered coarsest (L3) first. An empty Levels list goes
// straight to the element kernel.
type MatMulTrace struct {
	M, N, L int
	Levels  []TraceLevel

	A, B, C access.Region
}

// NewMatMulTrace lays out A, B and C in a fresh line-aligned address space.
func NewMatMulTrace(m, n, l int, lineBytes int, levels ...TraceLevel) *MatMulTrace {
	lay := access.NewLayout(uint64(lineBytes))
	return &MatMulTrace{
		M: m, N: n, L: l,
		Levels: levels,
		A:      lay.NewRegion(m, n),
		B:      lay.NewRegion(n, l),
		C:      lay.NewRegion(m, l),
	}
}

// Run emits the full access stream into sink.
func (t *MatMulTrace) Run(sink access.Sink) {
	t.recurse(sink, t.Levels, 0, 0, 0, t.M, t.L, t.N)
}

// recurse multiplies the (ci,cj) anchored sub-problem of extent (m rows of C,
// l cols of C, n contraction) at the given blocking depth. ck is the
// contraction offset.
func (t *MatMulTrace) recurse(sink access.Sink, levels []TraceLevel, ci, cj, ck, m, l, n int) {
	if len(levels) == 0 {
		t.kernel(sink, ci, cj, ck, m, l, n)
		return
	}
	lv := levels[0]
	b := lv.Block
	mb, lb, nb := ceilDiv(m, b), ceilDiv(l, b), ceilDiv(n, b)
	step := func(i, j, k int) {
		t.recurse(sink, levels[1:],
			ci+i*b, cj+j*b, ck+k*b,
			min(b, m-i*b), min(b, l-j*b), min(b, n-k*b))
	}
	if lv.ContractionInner {
		// Fig. 4a order: all contributions to one C block execute
		// consecutively.
		for i := 0; i < mb; i++ {
			for j := 0; j < lb; j++ {
				for k := 0; k < nb; k++ {
					step(i, j, k)
				}
			}
		}
	} else {
		// Fig. 4b order: contraction outermost (slabs parallel to C).
		for k := 0; k < nb; k++ {
			for i := 0; i < mb; i++ {
				for j := 0; j < lb; j++ {
					step(i, j, k)
				}
			}
		}
	}
}

// kernel is the innermost element loop with register accumulation of each C
// element: read C once, stream the dot product, write C once.
func (t *MatMulTrace) kernel(sink access.Sink, ci, cj, ck, m, l, n int) {
	for i := 0; i < m; i++ {
		for j := 0; j < l; j++ {
			sink.Access(t.C.Addr(ci+i, cj+j), false)
			for k := 0; k < n; k++ {
				sink.Access(t.A.Addr(ci+i, ck+k), false)
				sink.Access(t.B.Addr(ck+k, cj+j), false)
			}
			sink.Access(t.C.Addr(ci+i, cj+j), true)
		}
	}
}

// PredictTraceOps returns the exact number of reads and writes the trace will
// emit when all dims divide the finest block evenly: every base-kernel call
// reads and writes each of its C elements once and streams A and B.
func (t *MatMulTrace) PredictTraceOps() (reads, writes int64) {
	fin := t.finestBlock()
	M, N, L := int64(t.M), int64(t.N), int64(t.L)
	cVisits := M * L * (N / int64(fin))
	return 2*M*N*L + cVisits, cVisits
}

func (t *MatMulTrace) finestBlock() int {
	if len(t.Levels) == 0 {
		return t.N
	}
	return t.Levels[len(t.Levels)-1].Block
}

// COMatMulTrace is the cache-oblivious recursive order of Figure 2a (Frigo et
// al.): split the largest of the three dimensions in half, recurse, and run
// the element kernel below a base threshold. Splitting the contraction
// dimension executes the two halves in sequence on the same C block.
type COMatMulTrace struct {
	M, N, L int
	Base    int
	A, B, C access.Region
}

// NewCOMatMulTrace lays out the operands in a fresh address space.
func NewCOMatMulTrace(m, n, l, base, lineBytes int) *COMatMulTrace {
	lay := access.NewLayout(uint64(lineBytes))
	return &COMatMulTrace{
		M: m, N: n, L: l, Base: base,
		A: lay.NewRegion(m, n),
		B: lay.NewRegion(n, l),
		C: lay.NewRegion(m, l),
	}
}

// Run emits the access stream.
func (t *COMatMulTrace) Run(sink access.Sink) {
	t.rec(sink, 0, 0, 0, t.M, t.L, t.N)
}

func (t *COMatMulTrace) rec(sink access.Sink, ci, cj, ck, m, l, n int) {
	if m <= t.Base && l <= t.Base && n <= t.Base {
		for i := 0; i < m; i++ {
			for j := 0; j < l; j++ {
				sink.Access(t.C.Addr(ci+i, cj+j), false)
				for k := 0; k < n; k++ {
					sink.Access(t.A.Addr(ci+i, ck+k), false)
					sink.Access(t.B.Addr(ck+k, cj+j), false)
				}
				sink.Access(t.C.Addr(ci+i, cj+j), true)
			}
		}
		return
	}
	switch {
	case m >= l && m >= n:
		h := m / 2
		t.rec(sink, ci, cj, ck, h, l, n)
		t.rec(sink, ci+h, cj, ck, m-h, l, n)
	case l >= n:
		h := l / 2
		t.rec(sink, ci, cj, ck, m, h, n)
		t.rec(sink, ci, cj+h, ck, m, l-h, n)
	default:
		h := n / 2
		t.rec(sink, ci, cj, ck, m, l, h)
		t.rec(sink, ci, cj, ck+h, m, l, n-h)
	}
}

// IdealCacheMisses is the Frigo et al. ideal-cache miss estimate for the
// cache-oblivious multiplication — the "Misses on Ideal Cache" reference line
// of Figure 2a — in cache lines:
//
//	( m*n*ceil(l/s) + l*n*ceil(m/s) + l*m*ceil(n/s) ) * elemBytes/lineBytes
//
// with s = sqrt(M/(3*elemBytes)) the largest square tile edge fitting in a
// cache of M bytes.
func IdealCacheMisses(l, m, n int, cacheBytes, lineBytes int) int64 {
	s := isqrt(int64(cacheBytes) / (3 * 8))
	if s < 1 {
		s = 1
	}
	ceil := func(a int) int64 { return int64((a + s - 1) / s) }
	elems := int64(m)*int64(n)*ceil(l) + int64(l)*int64(n)*ceil(m) + int64(l)*int64(m)*ceil(n)
	return elems * 8 / int64(lineBytes)
}
