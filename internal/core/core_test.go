package core

import (
	"testing"
	"testing/quick"

	"writeavoid/internal/machine"
	"writeavoid/internal/matrix"
)

func planFor(b int, order Order) *Plan {
	return TwoLevelPlan(int64(3*b*b), b, order)
}

func plan3L(b0, b1 int, order Order) *Plan {
	h := machine.New(true,
		machine.Level{Name: "L1", Size: int64(3 * b0 * b0)},
		machine.Level{Name: "L2", Size: int64(3 * b1 * b1)},
		machine.Level{Name: "L3"})
	return &Plan{H: h, BlockSizes: []int{b0, b1}, Order: order}
}

func TestMatMulCorrectTwoLevel(t *testing.T) {
	for _, order := range []Order{OrderWA, OrderNonWA} {
		a := matrix.Random(12, 8, 1)
		b := matrix.Random(8, 16, 2)
		c := matrix.Random(12, 16, 3)
		want := c.Clone()
		matrix.MulAdd(want, a, b)
		p := planFor(4, order)
		if err := MatMul(p, c, a, b); err != nil {
			t.Fatalf("%v: %v", order, err)
		}
		if matrix.MaxAbsDiff(c, want) > 1e-12 {
			t.Fatalf("%v: wrong product, diff %g", order, matrix.MaxAbsDiff(c, want))
		}
	}
}

func TestMatMulCorrectThreeLevel(t *testing.T) {
	a := matrix.Random(16, 16, 4)
	b := matrix.Random(16, 16, 5)
	c := matrix.New(16, 16)
	want := matrix.Mul(a, b)
	p := plan3L(2, 8, OrderWA)
	if err := MatMul(p, c, a, b); err != nil {
		t.Fatal(err)
	}
	if matrix.MaxAbsDiff(c, want) > 1e-12 {
		t.Fatalf("multi-level product wrong, diff %g", matrix.MaxAbsDiff(c, want))
	}
}

func TestMatMulExactCountsTwoLevel(t *testing.T) {
	m, n, l, b := 12, 8, 16, 4
	p := planFor(b, OrderWA)
	c := matrix.New(m, l)
	if err := MatMul(p, c, matrix.Random(m, n, 1), matrix.Random(n, l, 2)); err != nil {
		t.Fatal(err)
	}
	pred := PredictMatMul(m, n, l, []int{b})
	got := p.H.Interface(0)
	if got.LoadWords != pred.LoadWords[0] {
		t.Errorf("loads: got %d want %d", got.LoadWords, pred.LoadWords[0])
	}
	if got.StoreWords != pred.StoreWords[0] {
		t.Errorf("stores: got %d want %d", got.StoreWords, pred.StoreWords[0])
	}
	if got.LoadMsgs != pred.LoadMsgs[0] {
		t.Errorf("load msgs: got %d want %d", got.LoadMsgs, pred.LoadMsgs[0])
	}
	if got.StoreMsgs != pred.StoreMsgs[0] {
		t.Errorf("store msgs: got %d want %d", got.StoreMsgs, pred.StoreMsgs[0])
	}
	// Paper's closed forms: loads = ml + 2mnl/b, stores = ml.
	M, N, L, B := int64(m), int64(n), int64(l), int64(b)
	if got.LoadWords != M*L+2*M*N*L/B {
		t.Errorf("loads %d != paper formula %d", got.LoadWords, M*L+2*M*N*L/B)
	}
	if got.StoreWords != M*L {
		t.Errorf("stores %d != output size %d", got.StoreWords, M*L)
	}
	if p.H.FlopCount() != 2*M*N*L {
		t.Errorf("flops %d want %d", p.H.FlopCount(), 2*M*N*L)
	}
}

func TestMatMulExactCountsThreeLevel(t *testing.T) {
	m, n, l := 16, 16, 16
	bs := []int{2, 8}
	p := plan3L(bs[0], bs[1], OrderWA)
	c := matrix.New(m, l)
	if err := MatMul(p, c, matrix.Random(m, n, 1), matrix.Random(n, l, 2)); err != nil {
		t.Fatal(err)
	}
	pred := PredictMatMul(m, n, l, bs)
	for s := 0; s < 2; s++ {
		got := p.H.Interface(s)
		if got.LoadWords != pred.LoadWords[s] || got.StoreWords != pred.StoreWords[s] {
			t.Errorf("iface %d: got (%d,%d) want (%d,%d)",
				s, got.LoadWords, got.StoreWords, pred.LoadWords[s], pred.StoreWords[s])
		}
		if got.LoadMsgs != pred.LoadMsgs[s] || got.StoreMsgs != pred.StoreMsgs[s] {
			t.Errorf("iface %d msgs: got (%d,%d) want (%d,%d)",
				s, got.LoadMsgs, got.StoreMsgs, pred.LoadMsgs[s], pred.StoreMsgs[s])
		}
	}
}

func TestMatMulWAvsNonWAWrites(t *testing.T) {
	m, n, l, b := 16, 16, 16, 4
	run := func(order Order) machine.InterfaceCounters {
		p := planFor(b, order)
		c := matrix.New(m, l)
		if err := MatMul(p, c, matrix.Random(m, n, 1), matrix.Random(n, l, 2)); err != nil {
			t.Fatal(err)
		}
		return p.H.Interface(0)
	}
	wa := run(OrderWA)
	nw := run(OrderNonWA)
	if wa.StoreWords != int64(m*l) {
		t.Fatalf("WA stores %d != output %d", wa.StoreWords, m*l)
	}
	wantNW, _ := int64(0), int64(0)
	if lw, sw := PredictMatMulNonWA(m, n, l, b); true {
		wantNW = sw
		if nw.LoadWords != lw {
			t.Errorf("nonWA loads %d want %d", nw.LoadWords, lw)
		}
	}
	if nw.StoreWords != wantNW {
		t.Errorf("nonWA stores %d want %d", nw.StoreWords, wantNW)
	}
	if nw.StoreWords != int64(n/b)*wa.StoreWords {
		t.Errorf("nonWA should store n/b=%d times more: %d vs %d", n/b, nw.StoreWords, wa.StoreWords)
	}
}

func TestMatMulNaiveMinWritesMaxReads(t *testing.T) {
	m, n, l := 8, 8, 8
	h := machine.TwoLevel(16)
	c := matrix.New(m, l)
	MatMulNaive(h, c, matrix.Random(m, n, 1), matrix.Random(n, l, 2))
	got := h.Interface(0)
	if got.StoreWords != int64(m*l) {
		t.Errorf("naive stores %d want output size %d", got.StoreWords, m*l)
	}
	if got.LoadWords != 2*int64(m)*int64(n)*int64(l) {
		t.Errorf("naive loads %d want 2mnl=%d", got.LoadWords, 2*m*n*l)
	}
	want := matrix.Mul(matrix.Random(m, n, 1), matrix.Random(n, l, 2))
	if matrix.MaxAbsDiff(c, want) > 1e-12 {
		t.Error("naive result wrong")
	}
}

func TestMatMulTheorem1AndResidency(t *testing.T) {
	f := func(seed uint64) bool {
		p := planFor(4, OrderWA)
		c := matrix.New(8, 12)
		if err := MatMul(p, c, matrix.Random(8, 4, seed), matrix.Random(4, 12, seed+1)); err != nil {
			return false
		}
		return p.H.Theorem1Holds(0) && p.H.ResidencyBalanced(0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// Property: for random block-aligned shapes the measured counts equal the
// closed-form predictor exactly, at both interfaces of a 3-level machine.
func TestMatMulCountsPropertyRandomShapes(t *testing.T) {
	f := func(seed uint64) bool {
		rng := seed
		next := func(lim int) int {
			rng = rng*6364136223846793005 + 1442695040888963407
			return int(rng>>33)%lim + 1
		}
		b0, b1 := 2, 8
		m := b1 * next(3)
		n := b1 * next(3)
		l := b1 * next(3)
		p := plan3L(b0, b1, OrderWA)
		c := matrix.New(m, l)
		if err := MatMul(p, c, matrix.Random(m, n, seed), matrix.Random(n, l, seed+1)); err != nil {
			return false
		}
		pred := PredictMatMul(m, n, l, []int{b0, b1})
		for s := 0; s < 2; s++ {
			got := p.H.Interface(s)
			if got.LoadWords != pred.LoadWords[s] || got.StoreWords != pred.StoreWords[s] ||
				got.LoadMsgs != pred.LoadMsgs[s] || got.StoreMsgs != pred.StoreMsgs[s] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulRejectsBadShapes(t *testing.T) {
	p := planFor(4, OrderWA)
	if err := MatMul(p, matrix.New(8, 8), matrix.New(8, 4), matrix.New(8, 8)); err == nil {
		t.Fatal("want shape error")
	}
	if err := MatMul(p, matrix.New(9, 9), matrix.New(9, 9), matrix.New(9, 9)); err == nil {
		t.Fatal("want divisibility error")
	}
}

func TestMatMulSubAndSYRK(t *testing.T) {
	n, b := 16, 4
	a := matrix.Random(n, n, 70)
	bm := matrix.Random(n, n, 71)
	c := matrix.Random(n, n, 72)

	want := c.Clone()
	matrix.MulSub(want, a, bm)
	p := planFor(b, OrderWA)
	got := c.Clone()
	if err := MatMulSub(p, got, a, bm); err != nil {
		t.Fatal(err)
	}
	if matrix.MaxAbsDiff(got, want) > 1e-12 {
		t.Fatal("MatMulSub wrong")
	}

	wantS := c.Clone()
	matrix.MulSubTrans(wantS, a, a)
	p2 := planFor(b, OrderWA)
	gotS := c.Clone()
	if err := SYRK(p2, gotS, a); err != nil {
		t.Fatal(err)
	}
	if matrix.MaxAbsDiff(gotS, wantS) > 1e-12 {
		t.Fatal("SYRK wrong")
	}
	// SYRK traffic matches the GEMM predictor (same blocking structure).
	pred := PredictMatMul(n, n, n, []int{b})
	if p2.H.Interface(0).LoadWords != pred.LoadWords[0] {
		t.Fatalf("SYRK loads %d want %d", p2.H.Interface(0).LoadWords, pred.LoadWords[0])
	}
	if err := SYRK(planFor(b, OrderWA), matrix.New(8, 4), matrix.New(8, 4)); err == nil {
		t.Fatal("want shape error")
	}
}

func TestPlanValidation(t *testing.T) {
	h := machine.TwoLevel(10) // too small for 3 blocks of 4x4
	p := &Plan{H: h, BlockSizes: []int{4}}
	if err := p.validate(8); err == nil {
		t.Fatal("want capacity error")
	}
	p2 := plan3L(3, 8, OrderWA) // 8 % 3 != 0
	if err := p2.validate(16); err == nil {
		t.Fatal("want nesting error")
	}
	p3 := &Plan{H: machine.TwoLevel(100), BlockSizes: []int{2, 4}}
	if err := p3.validate(8); err == nil {
		t.Fatal("want interface-count error")
	}
}

func TestTRSMCorrectBothOrders(t *testing.T) {
	n, m := 12, 8
	tm := matrix.RandomUpperTriangular(n, 7)
	x := matrix.Random(n, m, 8)
	rhs := matrix.Mul(tm, x)
	for _, order := range []Order{OrderWA, OrderNonWA} {
		b := rhs.Clone()
		p := planFor(4, order)
		if err := TRSM(p, tm, b); err != nil {
			t.Fatalf("%v: %v", order, err)
		}
		if matrix.MaxAbsDiff(b, x) > 1e-8 {
			t.Fatalf("%v: TRSM wrong, diff %g", order, matrix.MaxAbsDiff(b, x))
		}
	}
}

func TestTRSMCorrectThreeLevel(t *testing.T) {
	n, m := 16, 16
	tm := matrix.RandomUpperTriangular(n, 9)
	x := matrix.Random(n, m, 10)
	b := matrix.Mul(tm, x)
	p := plan3L(2, 8, OrderWA)
	if err := TRSM(p, tm, b); err != nil {
		t.Fatal(err)
	}
	if matrix.MaxAbsDiff(b, x) > 1e-8 {
		t.Fatalf("diff %g", matrix.MaxAbsDiff(b, x))
	}
}

func TestTRSMExactCounts(t *testing.T) {
	n, m, b := 16, 12, 4
	p := planFor(b, OrderWA)
	tm := matrix.RandomUpperTriangular(n, 7)
	rhs := matrix.Random(n, m, 8)
	if err := TRSM(p, tm, rhs); err != nil {
		t.Fatal(err)
	}
	wantL, wantS := PredictTRSM(n, m, b)
	got := p.H.Interface(0)
	if got.LoadWords != wantL || got.StoreWords != wantS {
		t.Fatalf("got (%d,%d) want (%d,%d)", got.LoadWords, got.StoreWords, wantL, wantS)
	}
	if got.StoreWords != int64(n*m) {
		t.Fatalf("WA TRSM must store exactly the output: %d vs %d", got.StoreWords, n*m)
	}
}

func TestTRSMNonWAStoresMore(t *testing.T) {
	n, m, b := 16, 12, 4
	p := planFor(b, OrderNonWA)
	tm := matrix.RandomUpperTriangular(n, 7)
	rhs := matrix.Random(n, m, 8)
	if err := TRSM(p, tm, rhs); err != nil {
		t.Fatal(err)
	}
	wantL, wantS := PredictTRSMNonWA(n, m, b)
	got := p.H.Interface(0)
	if got.LoadWords != wantL || got.StoreWords != wantS {
		t.Fatalf("got (%d,%d) want (%d,%d)", got.LoadWords, got.StoreWords, wantL, wantS)
	}
	if got.StoreWords <= int64(n*m) {
		t.Fatal("non-WA TRSM should store more than the output")
	}
}

func TestCholeskyCorrectBothOrders(t *testing.T) {
	n := 16
	for _, order := range []Order{OrderWA, OrderNonWA} {
		a := matrix.RandomSPD(n, 5)
		want := a.Clone()
		if err := matrix.CholeskyInPlace(want); err != nil {
			t.Fatal(err)
		}
		p := planFor(4, order)
		if err := Cholesky(p, a); err != nil {
			t.Fatalf("%v: %v", order, err)
		}
		// Compare lower triangles only.
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				d := a.At(i, j) - want.At(i, j)
				if d < -1e-8 || d > 1e-8 {
					t.Fatalf("%v: L(%d,%d) differs by %g", order, i, j, d)
				}
			}
		}
	}
}

func TestCholeskyCorrectThreeLevel(t *testing.T) {
	n := 16
	a := matrix.RandomSPD(n, 6)
	want := a.Clone()
	if err := matrix.CholeskyInPlace(want); err != nil {
		t.Fatal(err)
	}
	p := plan3L(2, 8, OrderWA)
	if err := Cholesky(p, a); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			d := a.At(i, j) - want.At(i, j)
			if d < -1e-8 || d > 1e-8 {
				t.Fatalf("L(%d,%d) differs by %g", i, j, d)
			}
		}
	}
}

func TestCholeskyExactCounts(t *testing.T) {
	n, b := 20, 4
	p := planFor(b, OrderWA)
	a := matrix.RandomSPD(n, 5)
	if err := Cholesky(p, a); err != nil {
		t.Fatal(err)
	}
	wantL, wantS := PredictCholesky(n, b)
	got := p.H.Interface(0)
	if got.LoadWords != wantL || got.StoreWords != wantS {
		t.Fatalf("got (%d,%d) want (%d,%d)", got.LoadWords, got.StoreWords, wantL, wantS)
	}
	// Left-looking stores exactly the lower triangle (in block form).
	tBlocks := int64(n / b)
	tri := int64(b) * int64(b+1) / 2
	wantOut := tBlocks*tri + int64(b*b)*tBlocks*(tBlocks-1)/2
	if got.StoreWords != wantOut {
		t.Fatalf("WA Cholesky stores %d want output triangle %d", got.StoreWords, wantOut)
	}
}

func TestCholeskyRightLookingWritesMore(t *testing.T) {
	n, b := 24, 4
	run := func(order Order) int64 {
		p := planFor(b, order)
		a := matrix.RandomSPD(n, 9)
		if err := Cholesky(p, a); err != nil {
			t.Fatal(err)
		}
		return p.H.Interface(0).StoreWords
	}
	left := run(OrderWA)
	right := run(OrderNonWA)
	if right <= 2*left {
		t.Fatalf("right-looking should write much more: left=%d right=%d", left, right)
	}
}

func TestCholeskySingularityPropagates(t *testing.T) {
	a := matrix.New(8, 8) // all-zero: not SPD
	p := planFor(4, OrderWA)
	if err := Cholesky(p, a); err == nil {
		t.Fatal("want error for non-SPD input")
	}
}

func TestTwoLevelPlanDefaultBlock(t *testing.T) {
	p := TwoLevelPlan(300, 0, OrderWA)
	if p.BlockSizes[0] != 10 {
		t.Fatalf("default block %d want 10 (=sqrt(300/3))", p.BlockSizes[0])
	}
}

func TestOrderString(t *testing.T) {
	if OrderWA.String() != "WA" || OrderNonWA.String() != "nonWA" {
		t.Fatal("order names")
	}
}

// The paper's Section 4.1 multi-level induction: adding a smaller level L0
// must (1) not change writes to the levels above, (2) keep writes to L1
// within a constant factor, (3) do O(mnl/b0) writes to L0.
func TestMatMulMultiLevelInduction(t *testing.T) {
	m, n, l := 16, 16, 16
	p2 := planFor(8, OrderWA)
	c := matrix.New(m, l)
	if err := MatMul(p2, c, matrix.Random(m, n, 1), matrix.Random(n, l, 2)); err != nil {
		t.Fatal(err)
	}
	p3 := plan3L(2, 8, OrderWA)
	c3 := matrix.New(m, l)
	if err := MatMul(p3, c3, matrix.Random(m, n, 1), matrix.Random(n, l, 2)); err != nil {
		t.Fatal(err)
	}
	// (1) writes to the bottom level unchanged.
	if p3.H.WritesTo(2) != p2.H.WritesTo(1) {
		t.Errorf("adding a level changed slow-memory writes: %d vs %d",
			p3.H.WritesTo(2), p2.H.WritesTo(1))
	}
	// (2) writes to the middle level at most a constant factor above the
	// two-level fast-memory writes (paper proves factor ~2; the extra
	// stores from L0 contribute one more mnl/b1 term).
	if w3, w2 := p3.H.WritesTo(1), p2.H.WritesTo(0); w3 > 3*w2 {
		t.Errorf("middle-level writes blew up: %d vs %d", w3, w2)
	}
	// (3) L0 writes are Θ(mnl/b0): here exactly mnl/b1 + 2mnl/b0 loads.
	pred := PredictMatMul(m, n, l, []int{2, 8})
	if p3.H.WritesTo(0) != pred.LoadWords[0] {
		t.Errorf("L0 writes %d want %d", p3.H.WritesTo(0), pred.LoadWords[0])
	}
}
