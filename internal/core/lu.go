package core

import (
	"fmt"

	"writeavoid/internal/intmath"

	"writeavoid/internal/matrix"
)

// LU factors A = L*U (no pivoting) in place, leaving the packed factors (L
// strictly below the diagonal with an implied unit diagonal, U on and above
// it). The paper's Section 4.3 conjectures that the left-/right-looking
// contrast of Cholesky carries over to LU; this implementation confirms it:
//
//   - OrderWA (left-looking): every block of the matrix is stored to slow
//     memory exactly once (n^2 words), after absorbing all updates from the
//     block columns to its left while resident in fast memory.
//   - OrderNonWA (right-looking): after each block column is factored, the
//     whole trailing Schur complement is re-loaded and re-stored, for
//     Theta(n^3/b) writes.
//
// Like the other Section 4 kernels it extends to arbitrarily many levels:
// the block updates recurse through the blocked GEMM and the panel solves
// through blocked TRSM variants.
func LU(p *Plan, a *matrix.Dense) error {
	if a.Rows != a.Cols {
		return errShape("LU", a, a, a)
	}
	if err := p.validate(a.Rows); err != nil {
		return err
	}
	switch p.Order {
	case OrderWA:
		return luLeftLevel(p, p.topInterface(), a)
	default:
		return luRightLevel(p, p.topInterface(), a)
	}
}

func luLeftLevel(p *Plan, s int, a *matrix.Dense) error {
	if s < 0 {
		if err := matrix.LUInPlace(a); err != nil {
			return err
		}
		n := int64(a.Rows)
		p.H.Flops(2 * n * n * n / 3)
		return nil
	}
	bs := p.BlockSizes[s]
	n := a.Rows
	nb := intmath.CeilDiv(n, bs)
	blk := func(i, k int) *matrix.Dense {
		return a.Block(i*bs, k*bs, min(bs, n-i*bs), min(bs, n-k*bs))
	}

	// Left-looking over block columns; within a column, top-down over row
	// blocks so each U(r,I) exists before the blocks below consume it.
	mark := p.marking(s)
	for i := 0; i < nb; i++ {
		if mark {
			p.H.Begin(panelLabels.Get(i))
		}
		for r := 0; r < nb; r++ {
			ri := blk(r, i)
			p.H.Load(s, words(ri))
			p.note(s, ri, false)
			// Updates from the columns to the left: A(r,I) -=
			// L(r,K)*U(K,I) for K < min(r,I).
			for k := 0; k < min(r, i); k++ {
				l, u := blk(r, k), blk(k, i)
				p.H.Load(s, words(l))
				p.H.Load(s, words(u))
				gemmLevel(p, s-1, ri, l, u, modeSubAB)
				p.H.Discard(s, words(l))
				p.H.Discard(s, words(u))
			}
			switch {
			case r < i:
				// U(r,I) = L(r,r)^-1 * A'(r,I).
				d := blk(r, r)
				p.H.Load(s, words(d))
				trsmUnitLowerLevel(p, s-1, d, ri)
				p.H.Discard(s, words(d))
			case r == i:
				if err := luLeftLevel(p, s-1, ri); err != nil {
					return fmt.Errorf("core: LU pivot block %d: %w", i, err)
				}
			default:
				// L(r,I) = A'(r,I) * U(I,I)^-1.
				d := blk(i, i)
				p.H.Load(s, words(d))
				trsmUpperRightLevel(p, s-1, d, ri)
				p.H.Discard(s, words(d))
			}
			p.H.Store(s, words(ri))
			p.note(s, ri, true)
		}
		if mark {
			p.H.End()
		}
	}
	return nil
}

func luRightLevel(p *Plan, s int, a *matrix.Dense) error {
	if s < 0 {
		if err := matrix.LUInPlace(a); err != nil {
			return err
		}
		n := int64(a.Rows)
		p.H.Flops(2 * n * n * n / 3)
		return nil
	}
	bs := p.BlockSizes[s]
	n := a.Rows
	nb := intmath.CeilDiv(n, bs)
	blk := func(i, k int) *matrix.Dense {
		return a.Block(i*bs, k*bs, min(bs, n-i*bs), min(bs, n-k*bs))
	}

	mark := p.marking(s)
	for k := 0; k < nb; k++ {
		if mark {
			p.H.Begin(panelLabels.Get(k))
			p.H.Begin("factor")
		}
		// Factor the diagonal.
		d := blk(k, k)
		p.H.Load(s, words(d))
		p.note(s, d, false)
		if err := luRightLevel(p, s-1, d); err != nil {
			return fmt.Errorf("core: LU pivot block %d: %w", k, err)
		}
		// Panels.
		for i := k + 1; i < nb; i++ {
			ik := blk(i, k)
			p.H.Load(s, words(ik))
			p.note(s, ik, false)
			trsmUpperRightLevel(p, s-1, d, ik) // L(i,k)
			p.H.Store(s, words(ik))
			p.note(s, ik, true)
		}
		for j := k + 1; j < nb; j++ {
			kj := blk(k, j)
			p.H.Load(s, words(kj))
			p.note(s, kj, false)
			trsmUnitLowerLevel(p, s-1, d, kj) // U(k,j)
			p.H.Store(s, words(kj))
			p.note(s, kj, true)
		}
		p.H.Store(s, words(d))
		p.note(s, d, true)
		if mark {
			p.H.End()
			p.H.Begin("update")
		}
		// Trailing update: the right-looking write amplification.
		for i := k + 1; i < nb; i++ {
			l := blk(i, k)
			p.H.Load(s, words(l))
			p.note(s, l, false)
			for j := k + 1; j < nb; j++ {
				u := blk(k, j)
				t := blk(i, j)
				p.H.Load(s, words(u))
				p.note(s, u, false)
				p.H.Load(s, words(t))
				p.note(s, t, false)
				gemmLevel(p, s-1, t, l, u, modeSubAB)
				p.H.Store(s, words(t))
				p.note(s, t, true)
				p.H.Discard(s, words(u))
			}
			p.H.Discard(s, words(l))
		}
		if mark {
			p.H.End()
			p.H.End()
		}
	}
	return nil
}

// trsmUnitLowerLevel solves L*X = B for X (overwriting B) where L is the
// unit-lower factor of an LU-packed square block, blocked with the
// write-avoiding k-innermost order.
func trsmUnitLowerLevel(p *Plan, s int, l, b *matrix.Dense) {
	if s < 0 {
		matrix.TRSMUnitLowerLeftPacked(l, b)
		p.H.Flops(int64(l.Rows) * int64(l.Rows) * int64(b.Cols))
		return
	}
	bs := p.BlockSizes[s]
	n, m := l.Rows, b.Cols
	nb, mb := intmath.CeilDiv(n, bs), intmath.CeilDiv(m, bs)
	blkL := func(i, k int) *matrix.Dense {
		return l.Block(i*bs, k*bs, min(bs, n-i*bs), min(bs, n-k*bs))
	}
	blkB := func(i, j int) *matrix.Dense {
		return b.Block(i*bs, j*bs, min(bs, n-i*bs), min(bs, m-j*bs))
	}
	for j := 0; j < mb; j++ {
		for i := 0; i < nb; i++ {
			bb := blkB(i, j)
			p.H.Load(s, words(bb))
			for k := 0; k < i; k++ {
				lk, xk := blkL(i, k), blkB(k, j)
				p.H.Load(s, words(lk))
				p.H.Load(s, words(xk))
				gemmLevel(p, s-1, bb, lk, xk, modeSubAB)
				p.H.Discard(s, words(lk))
				p.H.Discard(s, words(xk))
			}
			dk := blkL(i, i)
			p.H.Load(s, words(dk))
			trsmUnitLowerLevel(p, s-1, dk, bb)
			p.H.Discard(s, words(dk))
			p.H.Store(s, words(bb))
		}
	}
}

// trsmUpperRightLevel solves X*U = B for X (overwriting B) where U is the
// upper factor of an LU-packed square block, blocked WA.
func trsmUpperRightLevel(p *Plan, s int, u, b *matrix.Dense) {
	if s < 0 {
		matrix.TRSMUpperRightPacked(u, b)
		p.H.Flops(int64(b.Rows) * int64(u.Rows) * int64(u.Rows))
		return
	}
	bs := p.BlockSizes[s]
	n, m := u.Rows, b.Rows
	nb, mb := intmath.CeilDiv(n, bs), intmath.CeilDiv(m, bs)
	blkU := func(k, j int) *matrix.Dense {
		return u.Block(k*bs, j*bs, min(bs, n-k*bs), min(bs, n-j*bs))
	}
	blkB := func(i, j int) *matrix.Dense {
		return b.Block(i*bs, j*bs, min(bs, m-i*bs), min(bs, n-j*bs))
	}
	for i := 0; i < mb; i++ {
		for j := 0; j < nb; j++ {
			bb := blkB(i, j)
			p.H.Load(s, words(bb))
			for k := 0; k < j; k++ {
				xk, uk := blkB(i, k), blkU(k, j)
				p.H.Load(s, words(xk))
				p.H.Load(s, words(uk))
				gemmLevel(p, s-1, bb, xk, uk, modeSubAB)
				p.H.Discard(s, words(xk))
				p.H.Discard(s, words(uk))
			}
			dk := blkU(j, j)
			p.H.Load(s, words(dk))
			trsmUpperRightLevel(p, s-1, dk, bb)
			p.H.Discard(s, words(dk))
			p.H.Store(s, words(bb))
		}
	}
}

// PredictLU returns the exact OrderWA (left-looking) top-interface counts
// for an n-by-n LU with block size B (T = n/B):
//
//	stores = n^2                         (each block once)
//	loads  = n^2 (the blocks themselves)
//	       + 2*B^2*Sum_(r,i) min(r,i)    (L,U update pairs)
//	       + B^2*(T^2 - T)               (diagonal blocks for the TRSMs)
func PredictLU(n, blockSize int) (loadWords, storeWords int64) {
	b := int64(blockSize)
	t := int64(n) / b
	var pairs int64
	for r := int64(0); r < t; r++ {
		for i := int64(0); i < t; i++ {
			pairs += min64(r, i)
		}
	}
	offDiag := t*t - t // one diagonal-block load per off-diagonal block
	loadWords = int64(n)*int64(n) + 2*b*b*pairs + b*b*offDiag
	storeWords = int64(n) * int64(n)
	return loadWords, storeWords
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
