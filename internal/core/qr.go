package core

import (
	"fmt"
	"math"

	"writeavoid/internal/machine"
	"writeavoid/internal/matrix"
)

// QR computes a thin QR factorization A = Q*R by blocked modified
// Gram-Schmidt, overwriting A with the orthonormal Q and filling R (upper
// triangular). The paper's Section 4.3 conjectures that the left-/right-
// looking write contrast of Cholesky extends to QR; this confirms it:
//
//   - OrderWA (left-looking MGS): each block column of A is staged into fast
//     memory once, orthogonalized against all previously finished Q panels
//     (read tile by tile), factored, and written back once. Writes to slow
//     memory equal the output size (n*m for Q plus the R triangle).
//
//   - OrderNonWA (right-looking MGS): after each panel is finished it is
//     immediately applied to every trailing panel, which is re-loaded and
//     re-stored once per step — Theta(n*m^2/b) writes.
//
// Both variants keep a full m x b panel resident, so fast memory must hold
// m*b + 2*b^2 words (checked); with M ~ 3b^2 column residency is impossible,
// which is why — unlike matmul/TRSM/Cholesky/LU — write-avoiding QR here
// trades some read-optimality for write-optimality, the same trade the
// paper's LL-LUNP makes in the parallel setting.
func QR(h *machine.Hierarchy, b int, order Order, a, r *matrix.Dense) error {
	m, n := a.Rows, a.Cols
	if r.Rows != n || r.Cols != n {
		return fmt.Errorf("core: QR needs %dx%d R, got %dx%d", n, n, r.Rows, r.Cols)
	}
	if n%b != 0 || m%b != 0 {
		return fmt.Errorf("core: QR dims %dx%d not multiples of block %d", m, n, b)
	}
	need := int64(m*b + 2*b*b)
	if order == OrderNonWA {
		need = int64(2*m*b + 2*b*b) // the updated trailing panel is co-resident
	}
	if sz := h.LevelInfo(0).Size; sz > 0 && need > sz {
		return fmt.Errorf("core: QR panel residency needs %d words, fast memory has %d", need, sz)
	}
	r.Zero()
	if order == OrderWA {
		qrLeft(h, b, a, r)
	} else {
		qrRight(h, b, a, r)
	}
	return nil
}

// panel returns the m x b view of block column i.
func panel(a *matrix.Dense, i, b int) *matrix.Dense {
	return a.Block(0, i*b, a.Rows, b)
}

func qrLeft(h *machine.Hierarchy, b int, a, r *matrix.Dense) {
	m, n := a.Rows, a.Cols
	nb := n / b
	pw := int64(m * b) // panel words

	for i := 0; i < nb; i++ {
		pi := panel(a, i, b)
		h.Load(0, pw)
		// Orthogonalize against every finished panel K < i, reading Q
		// tiles twice (once to form R(K,i), once to apply it).
		for k := 0; k < i; k++ {
			rki := r.Block(k*b, i*b, b, b)
			h.Init(0, int64(b*b))
			// R(K,i) = Q(:,K)^T * A(:,i), accumulated tile by tile.
			for t0 := 0; t0 < m; t0 += b {
				qt := a.Block(t0, k*b, b, b)
				h.Load(0, int64(b*b))
				matrix.MulSubTrans(rki, qt.Transpose(), pi.Block(t0, 0, b, b).Transpose())
				h.Flops(2 * int64(b) * int64(b) * int64(b))
				h.Discard(0, int64(b*b))
			}
			rki.Scale(-1) // MulSubTrans accumulated the negation
			// A(:,i) -= Q(:,K) * R(K,i), tile by tile; the panel
			// stays resident so nothing is written to slow memory.
			for t0 := 0; t0 < m; t0 += b {
				qt := a.Block(t0, k*b, b, b)
				h.Load(0, int64(b*b))
				matrix.MulSub(pi.Block(t0, 0, b, b), qt, rki)
				h.Flops(2 * int64(b) * int64(b) * int64(b))
				h.Discard(0, int64(b*b))
			}
			h.Store(0, int64(b*b)) // R(K,i), once
		}
		// Factor the panel in fast memory (column MGS within the panel).
		h.Init(0, int64(b*b))
		mgsPanel(h, pi, r.Block(i*b, i*b, b, b))
		h.Store(0, int64(b*b)) // R(i,i)
		h.Store(0, pw)         // finished Q panel, once
	}
}

func qrRight(h *machine.Hierarchy, b int, a, r *matrix.Dense) {
	m, n := a.Rows, a.Cols
	nb := n / b
	pw := int64(m * b)

	for k := 0; k < nb; k++ {
		pk := panel(a, k, b)
		h.Load(0, pw)
		h.Init(0, int64(b*b))
		mgsPanel(h, pk, r.Block(k*b, k*b, b, b))
		h.Store(0, int64(b*b))
		// Immediately apply Q(:,k) to every trailing panel: each is
		// loaded and stored once per k — the write amplification.
		for j := k + 1; j < nb; j++ {
			pj := panel(a, j, b)
			h.Load(0, pw)
			rkj := r.Block(k*b, j*b, b, b)
			h.Init(0, int64(b*b))
			for t0 := 0; t0 < m; t0 += b {
				matrix.MulSubTrans(rkj, pk.Block(t0, 0, b, b).Transpose(), pj.Block(t0, 0, b, b).Transpose())
				h.Flops(2 * int64(b) * int64(b) * int64(b))
			}
			rkj.Scale(-1)
			for t0 := 0; t0 < m; t0 += b {
				matrix.MulSub(pj.Block(t0, 0, b, b), pk.Block(t0, 0, b, b), rkj)
				h.Flops(2 * int64(b) * int64(b) * int64(b))
			}
			h.Store(0, int64(b*b))
			h.Store(0, pw)
		}
		h.Store(0, pw) // finished Q panel
	}
}

// mgsPanel orthonormalizes an in-fast-memory m x b panel by modified
// Gram-Schmidt, writing the b x b triangle rd.
func mgsPanel(h *machine.Hierarchy, p *matrix.Dense, rd *matrix.Dense) {
	m, b := p.Rows, p.Cols
	for j := 0; j < b; j++ {
		s := 0.0
		for t := 0; t < m; t++ {
			v := p.At(t, j)
			s += v * v
		}
		nrm := math.Sqrt(s)
		if nrm == 0 {
			panic("core: rank-deficient panel in QR")
		}
		rd.Set(j, j, nrm)
		inv := 1 / nrm
		for t := 0; t < m; t++ {
			p.Set(t, j, p.At(t, j)*inv)
		}
		for c := j + 1; c < b; c++ {
			d := 0.0
			for t := 0; t < m; t++ {
				d += p.At(t, j) * p.At(t, c)
			}
			rd.Set(j, c, d)
			for t := 0; t < m; t++ {
				p.Set(t, c, p.At(t, c)-d*p.At(t, j))
			}
		}
	}
	h.Flops(2 * int64(m) * int64(b) * int64(b))
}

// PredictQR returns the exact top-interface counts of the left-looking
// (OrderWA) QR of an m x n matrix with block size B (T = n/B):
//
//	stores = m*n (Q, once) + B^2*T(T+1)/2 (R tiles)
//	loads  = m*n (the panels) + 2*m*B*B^2-tile reads ... = m*n + 2*m*B*T(T-1)/2... computed below.
func PredictQR(m, n, blockSize int) (loadWords, storeWords int64) {
	b := int64(blockSize)
	t := int64(n) / b
	M := int64(m)
	pairs := t * (t - 1) / 2 // (K,i) panel pairs
	loadWords = M*b*t + pairs*2*M*b
	storeWords = M*b*t + b*b*pairs + b*b*t // Q + off-diag R tiles + diagonal R tiles
	return loadWords, storeWords
}
