// Package core implements the sequential write-avoiding algorithms of
// Section 4 of "Write-Avoiding Algorithms" (Carson et al., 2015): explicitly
// blocked classical matrix multiplication (Algorithm 1), triangular solve
// (Algorithm 2), left-looking Cholesky factorization (Algorithm 3), and their
// non-write-avoiding loop-order siblings, over two-level or arbitrary
// multi-level memory hierarchies.
//
// Every algorithm here does two things at once:
//
//  1. it computes the real numerical result on matrix.Dense data (validated
//     against the naive reference kernels in internal/matrix), and
//  2. it drives an explicit machine.Hierarchy with the exact Load/Store/
//     Init/Discard sequence of the paper's pseudocode, so the per-level
//     read/write counters can be compared against the paper's closed-form
//     counts, which this package also provides as Predict* functions.
//
// The same algorithms are additionally available as element-granularity
// address-trace emitters (trace.go) for the Section 6 cache-replacement
// experiments.
package core

import (
	"fmt"

	"writeavoid/internal/intmath"
	"writeavoid/internal/machine"
	"writeavoid/internal/matrix"
)

// Order selects the block loop nesting. The paper's central observation is
// that the same blocked CA algorithm is write-avoiding for exactly one of
// these orders.
type Order int

const (
	// OrderWA keeps the output block innermost-accumulated: the
	// contraction dimension is the innermost block loop (k innermost for
	// C=AB and TRSM; left-looking for Cholesky). Writes to slow memory
	// equal the output size.
	OrderWA Order = iota
	// OrderNonWA puts the contraction dimension outermost (right-looking
	// for Cholesky), so every output block is re-loaded and re-stored per
	// contraction step: still communication-avoiding, but writes to slow
	// memory are within a constant factor of reads.
	OrderNonWA
)

func (o Order) String() string {
	if o == OrderWA {
		return "WA"
	}
	return "nonWA"
}

// Plan describes how an algorithm maps onto a machine: the hierarchy whose
// counters are driven, and one block size per interface, fastest first.
// BlockSizes[i] is the tile edge used when staging data into level i from
// level i+1; it must satisfy 3*BlockSizes[i]^2 <= size of level i, and each
// block size must divide the next coarser one.
//
// A plan may supply fewer block sizes than the hierarchy has interfaces, in
// which case only the fastest len(BlockSizes) interfaces are driven: the
// operands are taken to be resident in level len(BlockSizes) already. The
// parallel algorithms of Section 7 use this for multiplies on data already
// staged into DRAM of an L1/L2/NVM machine.
type Plan struct {
	H          *machine.Hierarchy
	BlockSizes []int
	Order      Order
	// Orders optionally overrides Order per interface: Orders[i] selects
	// the block loop nesting used when staging across interface i. Entries
	// beyond len(Orders) fall back to Order. The Section 6 mixed-order
	// instruction streams (write-avoiding at the top interface only, or
	// everywhere but the top) are expressed this way.
	Orders []Order
	// Trace, when non-nil, switches the base-case kernels to their traced
	// twins, which emit every element access through H.Touch in the exact
	// instruction order of the reference kernels. Word and flop counting
	// is unchanged. See Tracer.
	Trace *Tracer
}

// orderAt returns the loop order used at interface s.
func (p *Plan) orderAt(s int) Order {
	if s < len(p.Orders) {
		return p.Orders[s]
	}
	return p.Order
}

// TwoLevelPlan is the common case: one fast level of m words with block size
// b = floor(sqrt(m/3)) unless an explicit b is given.
func TwoLevelPlan(fastWords int64, b int, order Order) *Plan {
	if b <= 0 {
		b = intmath.Isqrt(fastWords / 3)
	}
	return &Plan{H: machine.TwoLevel(fastWords), BlockSizes: []int{b}, Order: order}
}

// validate checks the plan's internal consistency against the dims it will
// be used with; dims must be divisible by the coarsest block size.
func (p *Plan) validate(dims ...int) error {
	if p.H == nil {
		return fmt.Errorf("core: plan has no hierarchy")
	}
	max := p.H.NumLevels() - 1
	if len(p.BlockSizes) < 1 || len(p.BlockSizes) > max {
		return fmt.Errorf("core: plan has %d block sizes for %d interfaces", len(p.BlockSizes), max)
	}
	for i, b := range p.BlockSizes {
		if b <= 0 {
			return fmt.Errorf("core: block size %d at interface %d", b, i)
		}
		if sz := p.H.LevelInfo(i).Size; sz > 0 && int64(3*b*b) > sz {
			return fmt.Errorf("core: 3 blocks of %d^2 words exceed level %s size %d",
				b, p.H.LevelInfo(i).Name, sz)
		}
		if i > 0 && p.BlockSizes[i]%p.BlockSizes[i-1] != 0 {
			return fmt.Errorf("core: block size %d at interface %d not a multiple of finer block %d",
				p.BlockSizes[i], i, p.BlockSizes[i-1])
		}
	}
	top := p.BlockSizes[len(p.BlockSizes)-1]
	for _, d := range dims {
		if d%top != 0 {
			return fmt.Errorf("core: dimension %d not a multiple of coarsest block %d", d, top)
		}
	}
	return nil
}

// topInterface returns the index of the coarsest interface (the one adjacent
// to the slowest level).
func (p *Plan) topInterface() int { return len(p.BlockSizes) - 1 }

// note annotates the block transfer just counted across interface s with
// block v's address extent (see Hierarchy.Range). A no-op unless the plan
// is traced and a touch-interested recorder is attached, and never a change
// to word or message counters either way.
func (p *Plan) note(s int, v *matrix.Dense, store bool) {
	if p.Trace != nil && p.H.Tracing() {
		p.Trace.Ranges(s, v, store)
	}
}

// noteLower is note for lower-triangle (triWords) transfers.
func (p *Plan) noteLower(s int, v *matrix.Dense, store bool) {
	if p.Trace != nil && p.H.Tracing() {
		p.Trace.RangesLower(s, v, store)
	}
}

// noteSized dispatches to noteLower or note depending on whether the
// transfer just counted moved the lower triangle or the whole block.
func (p *Plan) noteSized(s int, v *matrix.Dense, lower, store bool) {
	if lower {
		p.noteLower(s, v, store)
	} else {
		p.note(s, v, store)
	}
}

// marking reports whether span labels are worth formatting at interface s:
// only the coarsest interface of a driver emits spans, and only when an
// attribution recorder is attached.
func (p *Plan) marking(s int) bool {
	return s == p.topInterface() && p.H.Marking()
}
