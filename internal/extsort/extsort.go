// Package extsort implements external-memory sorting over the explicit
// machine model. Sort is the exhibit for the paper's Section 9 conjecture
// that no algorithm for sorting can perform o(n log_M n) writes while
// keeping O(n log_M n) reads: the standard I/O-optimal multiway mergesort
// writes as much as it reads in every pass, for every fast-memory size.
//
// SortWriteEfficient is the other side of the trade the paper's successors
// (Blelloch/Fineman/Gibbons/Gu, arXiv:1511.01038) formalize with the
// explicit write-cost parameter ω: a selection-based schedule that stores
// every output word exactly once — n slow-memory writes total — by paying
// ceil(n/(m/2)) full read passes. SortOmega compares the two under the
// (M, ω) cost reads + ω·writes and runs whichever is cheaper, shrinking the
// merge variant's per-run buffers as ω grows to buy larger fanout (fewer
// passes, hence fewer writes) first.
package extsort

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"writeavoid/internal/intmath"
	"writeavoid/internal/machine"
)

// defaultBuf is the classical per-run merge buffer size (words).
const defaultBuf = 8

// run is a sorted contiguous segment [lo, hi) living in src.
type run struct {
	lo, hi int
	src    []float64
}

// Sort sorts data ascending with run formation plus multiway merge passes on
// a two-level machine whose fast memory holds m words, driving h's counters.
// The merge fanout is chosen so each input run gets a fast-memory buffer of
// at least 8 words (plus one output buffer). A trailing merge group that
// contains a single run is left in place rather than round-tripped through
// slow memory: it is already sorted, so re-reading and re-writing it would
// charge a full pass for nothing.
func Sort(h *machine.Hierarchy, m int, data []float64) ([]float64, error) {
	return sortMerge(h, m, defaultBuf, data)
}

// sortMerge is the merge-based sort with a configurable per-run buffer size;
// buf = defaultBuf is the classical Sort, smaller buffers buy larger fanout
// at the price of more messages (SortOmega's knob).
func sortMerge(h *machine.Hierarchy, m, buf int, data []float64) ([]float64, error) {
	n := len(data)
	if m < 32 {
		return nil, fmt.Errorf("extsort: fast memory %d too small (need >= 32 words)", m)
	}
	out := append([]float64(nil), data...)
	if n <= 1 {
		// Nothing moves and nothing is compared: a 0- or 1-word input is
		// already sorted without touching the hierarchy.
		return out, nil
	}
	if n <= m {
		// Degenerate: a single in-memory run.
		h.Load(0, int64(n))
		sort.Float64s(out)
		h.Flops(int64(n) * intmath.Log2Ceil(n))
		h.Store(0, int64(n))
		return out, nil
	}

	// Phase 1: run formation. Read fast-memory-sized chunks, sort, write.
	// A trailing 1-word chunk costs its load and store but no comparisons.
	var runs []run
	for lo := 0; lo < n; lo += m {
		hi := min(n, lo+m)
		h.Load(0, int64(hi-lo))
		sort.Float64s(out[lo:hi])
		if hi-lo > 1 {
			h.Flops(int64(hi-lo) * intmath.Log2Ceil(hi-lo))
		}
		h.Store(0, int64(hi-lo))
		runs = append(runs, run{lo, hi, out})
	}

	// Phase 2: multiway merge passes with per-run buffers of size buf.
	// Runs live in whichever of the two arrays last wrote them; each pass
	// merges groups into the current dst, except single-run trailing groups,
	// which stay where they are free of charge. An in-place group (its last
	// run already in dst) is safe: the merged output index always trails
	// every unread index of that run, because the runs before it in the
	// group occupy exactly the dst prefix the merge fills first.
	fanout := m/buf - 1
	if fanout < 2 {
		fanout = 2
	}
	scratch := make([]float64, n)
	dst := scratch
	other := out
	for len(runs) > 1 {
		var next []run
		for g := 0; g < len(runs); g += fanout {
			ge := min(len(runs), g+fanout)
			if ge-g == 1 {
				next = append(next, runs[g])
				continue
			}
			mergeRuns(h, dst, runs[g:ge], buf)
			next = append(next, run{runs[g].lo, runs[ge-1].hi, dst})
		}
		runs = next
		dst, other = other, dst
	}
	_ = other
	return runs[0].src, nil
}

// mergeRuns merges the given runs (each knowing which array its words live
// in) into dst over the group's index range, charging buffered traffic:
// every word is loaded once (in buf-word blocks) and stored once (in
// buf-word blocks). Refills always load exactly the words remaining in the
// run (capped at buf), so a cursor's buffer drains to zero exactly when the
// run is exhausted — no residual words to discard.
func mergeRuns(h *machine.Hierarchy, dst []float64, runs []run, buf int) {
	cur := make([]cursor, len(runs))
	hp := &mergeHeap{cur: cur}
	for i, r := range runs {
		cur[i] = cursor{src: r.src, pos: r.lo, hi: r.hi}
		if r.lo < r.hi {
			first := min(buf, r.hi-r.lo)
			h.Load(0, int64(first))
			cur[i].buffered = first
			heap.Push(hp, mergeItem{run: i, idx: r.lo})
		}
	}
	outBase := runs[0].lo
	pending := 0 // words accumulated in the fast-memory output buffer
	for hp.Len() > 0 {
		it := heap.Pop(hp).(mergeItem)
		c := &cur[it.run]
		dst[outBase] = c.src[it.idx]
		outBase++
		pending++
		h.Flops(int64(intmath.Log2Ceil(len(runs))))
		if pending == buf {
			h.Store(0, int64(buf))
			pending = 0
		}
		c.pos++
		c.buffered--
		if c.pos < c.hi {
			if c.buffered == 0 {
				refill := min(buf, c.hi-c.pos)
				h.Load(0, int64(refill))
				c.buffered = refill
			}
			heap.Push(hp, mergeItem{run: it.run, idx: c.pos})
		}
	}
	if pending > 0 {
		h.Store(0, int64(pending))
	}
}

// cursor tracks one run's read position during a merge: which array its
// words live in, the next unread index, and how many words of the current
// buffer block are resident.
type cursor struct {
	src      []float64
	pos, hi  int
	buffered int
}

type mergeItem struct {
	run, idx int
}

type mergeHeap struct {
	cur   []cursor
	items []mergeItem
}

func (h *mergeHeap) at(i int) float64 { it := h.items[i]; return h.cur[it.run].src[it.idx] }

func (h *mergeHeap) Len() int           { return len(h.items) }
func (h *mergeHeap) Less(i, j int) bool { return h.at(i) < h.at(j) }
func (h *mergeHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *mergeHeap) Push(x interface{}) { h.items = append(h.items, x.(mergeItem)) }
func (h *mergeHeap) Pop() interface{} {
	old := h.items
	x := old[len(old)-1]
	h.items = old[:len(old)-1]
	return x
}

// PredictTraffic returns the exact slow-memory word traffic of Sort on an
// n-word input with m words of fast memory: run formation plus one
// load+store per word per merge pass, minus the words of trailing
// single-run groups that stay in place.
func PredictTraffic(n, m int) (loads, stores int64) {
	return predictMergeTraffic(n, m, defaultBuf)
}

// predictMergeTraffic simulates sortMerge's pass structure over the ragged
// run lengths without moving data, so the counts match the counters bit for
// bit for every n, m, buf.
func predictMergeTraffic(n, m, buf int) (loads, stores int64) {
	if n <= 1 {
		return 0, 0
	}
	if n <= m {
		return int64(n), int64(n)
	}
	loads, stores = int64(n), int64(n) // run formation
	var lens []int
	for lo := 0; lo < n; lo += m {
		lens = append(lens, min(n, lo+m)-lo)
	}
	fanout := m/buf - 1
	if fanout < 2 {
		fanout = 2
	}
	for len(lens) > 1 {
		var next []int
		for g := 0; g < len(lens); g += fanout {
			ge := min(len(lens), g+fanout)
			w := 0
			for _, l := range lens[g:ge] {
				w += l
			}
			if ge-g > 1 {
				loads += int64(w)
				stores += int64(w)
			}
			next = append(next, w)
		}
		lens = next
	}
	return loads, stores
}

// cand is a selection-sort candidate: a value plus its original index, so
// duplicates have a strict total order and the threshold can advance past
// every copy exactly once.
type cand struct {
	v float64
	i int
}

// candLess orders candidates by (value, original index).
func candLess(a, b cand) bool {
	return a.v < b.v || (a.v == b.v && a.i < b.i)
}

// candHeap is a max-heap of candidates: the root is the largest, so a
// full heap of the k smallest eligible elements evicts from the top.
type candHeap []cand

func (h candHeap) Len() int            { return len(h) }
func (h candHeap) Less(i, j int) bool  { return candLess(h[j], h[i]) }
func (h candHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *candHeap) Push(x interface{}) { *h = append(*h, x.(cand)) }
func (h *candHeap) Pop() interface{} {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}

// SortWriteEfficient sorts data ascending with O(n) slow-memory stores: each
// round scans the whole input in (m - m/2)-word chunks, keeps the m/2
// smallest not-yet-output elements in a fast-memory heap, and writes them
// out in order — every output word is stored exactly once, at the price of
// ceil(n/(m/2)) full read passes. This is the small-write end of the
// read/write trade the ω model prices (arXiv:1511.01038 §5).
func SortWriteEfficient(h *machine.Hierarchy, m int, data []float64) ([]float64, error) {
	n := len(data)
	if m < 32 {
		return nil, fmt.Errorf("extsort: fast memory %d too small (need >= 32 words)", m)
	}
	if n <= 1 {
		return append([]float64(nil), data...), nil
	}
	if n <= m {
		out := append([]float64(nil), data...)
		h.Load(0, int64(n))
		sort.Float64s(out)
		h.Flops(int64(n) * intmath.Log2Ceil(n))
		h.Store(0, int64(n))
		return out, nil
	}

	k := m / 2     // candidate heap capacity
	c := m - k     // scan chunk size; peak residency k + c = m
	res := make([]float64, 0, n)
	threshold := cand{math.Inf(-1), -1}
	hp := candHeap(make([]cand, 0, k))
	for len(res) < n {
		hp = hp[:0]
		for lo := 0; lo < n; lo += c {
			hi := min(n, lo+c)
			sz := hi - lo
			h.Load(0, int64(sz))
			kept := 0
			for i := lo; i < hi; i++ {
				x := cand{data[i], i}
				if !candLess(threshold, x) {
					continue // already output in an earlier round
				}
				if len(hp) < k {
					heap.Push(&hp, x)
					kept++
				} else if candLess(x, hp[0]) {
					h.Discard(0, 1) // the evicted former candidate
					hp[0] = x
					heap.Fix(&hp, 0)
					kept++
				}
			}
			// Each scanned word costs one heap comparison path; words never
			// kept leave fast memory at the end of the chunk.
			h.Flops(int64(sz) * intmath.Log2Ceil(k))
			if sz-kept > 0 {
				h.Discard(0, int64(sz-kept))
			}
		}
		hk := len(hp)
		tmp := make([]cand, hk)
		for i := hk - 1; i >= 0; i-- {
			tmp[i] = heap.Pop(&hp).(cand)
		}
		if hk > 1 {
			h.Flops(int64(hk) * intmath.Log2Ceil(hk))
		}
		for _, cd := range tmp {
			res = append(res, cd.v)
		}
		threshold = tmp[hk-1]
		h.Store(0, int64(hk))
	}
	return res, nil
}

// PredictTrafficWriteEfficient returns the exact slow-memory word traffic of
// SortWriteEfficient: ceil(n/(m/2)) full scans of the input, n stores total.
func PredictTrafficWriteEfficient(n, m int) (loads, stores int64) {
	if n <= 1 {
		return 0, 0
	}
	if n <= m {
		return int64(n), int64(n)
	}
	k := m / 2
	rounds := intmath.CeilDiv(n, k)
	return int64(rounds) * int64(n), int64(n)
}

// Strategy names which schedule an ω-aware sort chose.
type Strategy int

const (
	// StrategyMerge is the classical multiway mergesort (possibly with
	// ω-shrunk per-run buffers).
	StrategyMerge Strategy = iota
	// StrategySmallWrite is the O(n)-store selection schedule.
	StrategySmallWrite
)

func (s Strategy) String() string {
	switch s {
	case StrategyMerge:
		return "merge"
	case StrategySmallWrite:
		return "small-write"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// MergeBuf returns the per-run buffer size the ω-aware merge uses: the
// classical 8-word buffers at ω ≤ 1, halved for every doubling of ω down to
// 1-word buffers. Smaller buffers mean more messages per word but a larger
// fanout m/buf - 1, hence fewer passes — exactly the trade worth making
// when each written word costs ω loaded ones.
func MergeBuf(omega float64) int {
	buf := defaultBuf
	for w := omega; w >= 2 && buf > 1; w /= 2 {
		buf /= 2
	}
	return buf
}

// PlanOmega returns the strategy and merge buffer size SortOmega picks for
// an n-word input, m words of fast memory, and write-cost ω: the ω-weighted
// word cost loads + ω·stores of the ω-tuned merge against the small-write
// selection schedule, ties going to the merge.
func PlanOmega(n, m int, omega float64) (Strategy, int) {
	buf := MergeBuf(omega)
	ml, ms := predictMergeTraffic(n, m, buf)
	sl, ss := PredictTrafficWriteEfficient(n, m)
	if float64(sl)+omega*float64(ss) < float64(ml)+omega*float64(ms) {
		return StrategySmallWrite, buf
	}
	return StrategyMerge, buf
}

// SortOmega sorts data ascending on a two-level machine with m fast-memory
// words under the (M, ω) cost model: it prices both schedules with the
// exact predicted traffic and runs the cheaper one. ω = 1 is bit-identical
// to Sort.
func SortOmega(h *machine.Hierarchy, m int, omega float64, data []float64) ([]float64, Strategy, error) {
	s, buf := PlanOmega(len(data), m, omega)
	if s == StrategySmallWrite {
		out, err := SortWriteEfficient(h, m, data)
		return out, s, err
	}
	out, err := sortMerge(h, m, buf, data)
	return out, s, err
}

// PredictTrafficOmega returns the exact slow-memory traffic of SortOmega
// along with the strategy it will choose.
func PredictTrafficOmega(n, m int, omega float64) (loads, stores int64, s Strategy) {
	s, buf := PlanOmega(n, m, omega)
	if s == StrategySmallWrite {
		loads, stores = PredictTrafficWriteEfficient(n, m)
		return loads, stores, s
	}
	loads, stores = predictMergeTraffic(n, m, buf)
	return loads, stores, s
}
