// Package extsort implements external-memory multiway mergesort over the
// explicit machine model — the exhibit for the paper's Section 9 conjecture
// that no algorithm for sorting can perform o(n log_M n) writes while
// keeping O(n log_M n) reads: the standard I/O-optimal algorithm writes as
// much as it reads in every pass, for every fast-memory size.
package extsort

import (
	"container/heap"
	"fmt"
	"sort"

	"writeavoid/internal/intmath"
	"writeavoid/internal/machine"
)

// run is a sorted contiguous segment [lo, hi).
type run struct{ lo, hi int }

// Sort sorts data ascending with run formation plus multiway merge passes on
// a two-level machine whose fast memory holds m words, driving h's counters.
// The merge fanout is chosen so each input run gets a fast-memory buffer of
// at least 8 words (plus one output buffer).
func Sort(h *machine.Hierarchy, m int, data []float64) ([]float64, error) {
	n := len(data)
	if m < 32 {
		return nil, fmt.Errorf("extsort: fast memory %d too small (need >= 32 words)", m)
	}
	out := append([]float64(nil), data...)
	if n <= m {
		// Degenerate: a single in-memory run.
		h.Load(0, int64(n))
		sort.Float64s(out)
		h.Flops(int64(n) * intmath.Log2Ceil(n))
		h.Store(0, int64(n))
		return out, nil
	}

	// Phase 1: run formation. Read fast-memory-sized chunks, sort, write.
	var runs []run
	for lo := 0; lo < n; lo += m {
		hi := min(n, lo+m)
		h.Load(0, int64(hi-lo))
		sort.Float64s(out[lo:hi])
		h.Flops(int64(hi-lo) * intmath.Log2Ceil(hi-lo))
		h.Store(0, int64(hi-lo))
		runs = append(runs, run{lo, hi})
	}

	// Phase 2: multiway merge passes with per-run buffers of size buf.
	buf := 8
	fanout := m/buf - 1
	if fanout < 2 {
		fanout = 2
	}
	scratch := make([]float64, n)
	src, dst := out, scratch
	for len(runs) > 1 {
		var next []run
		for g := 0; g < len(runs); g += fanout {
			ge := min(len(runs), g+fanout)
			mergeRuns(h, src, dst, runs[g:ge], buf)
			next = append(next, run{runs[g].lo, runs[ge-1].hi})
		}
		runs = next
		src, dst = dst, src
	}
	return src, nil
}

// mergeRuns merges the given runs of src into dst over the same index range,
// charging buffered traffic: every word is loaded once (in buf-word blocks)
// and stored once (in buf-word blocks).
func mergeRuns(h *machine.Hierarchy, src, dst []float64, runs []run, buf int) {
	type cursor struct {
		pos, hi  int
		buffered int // words of the current buffer block already consumed
	}
	cur := make([]cursor, len(runs))
	for i, r := range runs {
		cur[i] = cursor{pos: r.lo, hi: r.hi}
	}
	hp := &mergeHeap{src: src}
	for i := range cur {
		if cur[i].pos < cur[i].hi {
			h.Load(0, int64(min(buf, cur[i].hi-cur[i].pos)))
			cur[i].buffered = min(buf, cur[i].hi-cur[i].pos)
			heap.Push(hp, mergeItem{run: i, idx: cur[i].pos})
		}
	}
	outBase := runs[0].lo
	pending := 0 // words accumulated in the fast-memory output buffer
	for hp.Len() > 0 {
		it := heap.Pop(hp).(mergeItem)
		dst[outBase] = src[it.idx]
		outBase++
		pending++
		h.Flops(int64(intmath.Log2Ceil(len(runs))))
		if pending == buf {
			h.Store(0, int64(buf))
			pending = 0
		}
		c := &cur[it.run]
		c.pos++
		c.buffered--
		if c.pos < c.hi {
			if c.buffered == 0 {
				refill := min(buf, c.hi-c.pos)
				h.Load(0, int64(refill))
				c.buffered = refill
			}
			heap.Push(hp, mergeItem{run: it.run, idx: c.pos})
		} else if c.buffered > 0 {
			h.Discard(0, int64(c.buffered))
			c.buffered = 0
		}
	}
	if pending > 0 {
		h.Store(0, int64(pending))
	}
}

type mergeItem struct {
	run, idx int
}

type mergeHeap struct {
	src   []float64
	items []mergeItem
}

func (h *mergeHeap) Len() int           { return len(h.items) }
func (h *mergeHeap) Less(i, j int) bool { return h.src[h.items[i].idx] < h.src[h.items[j].idx] }
func (h *mergeHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *mergeHeap) Push(x interface{}) { h.items = append(h.items, x.(mergeItem)) }
func (h *mergeHeap) Pop() interface{} {
	old := h.items
	x := old[len(old)-1]
	h.items = old[:len(old)-1]
	return x
}

// PredictTraffic returns the Aggarwal-Vitter-shaped word traffic of the
// algorithm: (1 + ceil(log_fanout(#runs))) full passes, each reading and
// writing all n words.
func PredictTraffic(n, m int) (loads, stores int64) {
	if n <= m {
		return int64(n), int64(n)
	}
	runs := (n + m - 1) / m
	fanout := m/8 - 1
	if fanout < 2 {
		fanout = 2
	}
	passes := int64(1) // run formation
	for runs > 1 {
		runs = (runs + fanout - 1) / fanout
		passes++
	}
	return passes * int64(n), passes * int64(n)
}
