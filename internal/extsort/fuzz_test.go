package extsort

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"

	"writeavoid/internal/machine"
)

// FuzzSortOmega drives all three sort entry points from a fuzzed
// (seed, n, m, ω) tuple: outputs must match the reference sort, realized
// traffic must match the predictions word for word, and the strict
// occupancy model must not panic — an occupancy bug surfaces as a crash.
func FuzzSortOmega(f *testing.F) {
	f.Add(uint64(1), uint16(100), uint16(64), float64(1))
	f.Add(uint64(2), uint16(4096), uint16(64), float64(8))
	f.Add(uint64(3), uint16(0), uint16(32), float64(100))
	f.Add(uint64(4), uint16(33), uint16(32), float64(2.5))
	f.Fuzz(func(t *testing.T, seed uint64, nRaw, mRaw uint16, omega float64) {
		n := int(nRaw % 5000)
		m := 32 + int(mRaw%500)
		if math.IsNaN(omega) || omega < 1 || omega > 1e6 {
			omega = 1 + math.Abs(math.Mod(omega, 1e6))
			if math.IsNaN(omega) {
				omega = 1
			}
		}
		rng := rand.New(rand.NewPCG(seed, 17))
		data := make([]float64, n)
		for i := range data {
			data[i] = rng.Float64()*2e6 - 1e6
		}
		want := append([]float64(nil), data...)
		sort.Float64s(want)

		check := func(name string, got []float64, h *machine.Hierarchy, wantL, wantS int64) {
			if len(got) != len(want) {
				t.Fatalf("%s: length %d want %d", name, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s: mismatch at %d: %g want %g", name, i, got[i], want[i])
				}
			}
			c := h.Interface(0)
			if c.LoadWords != wantL || c.StoreWords != wantS {
				t.Fatalf("%s: traffic (%d,%d) want (%d,%d)", name, c.LoadWords, c.StoreWords, wantL, wantS)
			}
			if !h.Theorem1Holds(0) || !h.ResidencyBalanced(0) {
				t.Fatalf("%s: model invariants violated", name)
			}
		}

		h1 := machine.TwoLevel(int64(m))
		out1, err := Sort(h1, m, data)
		if err != nil {
			t.Fatal(err)
		}
		l1, s1 := PredictTraffic(n, m)
		check("merge", out1, h1, l1, s1)

		h2 := machine.TwoLevel(int64(m))
		out2, err := SortWriteEfficient(h2, m, data)
		if err != nil {
			t.Fatal(err)
		}
		l2, s2 := PredictTrafficWriteEfficient(n, m)
		check("small-write", out2, h2, l2, s2)

		h3 := machine.TwoLevel(int64(m))
		out3, strat, err := SortOmega(h3, m, omega, data)
		if err != nil {
			t.Fatal(err)
		}
		l3, s3, wantStrat := PredictTrafficOmega(n, m, omega)
		if strat != wantStrat {
			t.Fatalf("omega: strategy %v want %v", strat, wantStrat)
		}
		check("omega", out3, h3, l3, s3)
	})
}
