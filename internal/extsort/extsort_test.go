package extsort

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"

	"writeavoid/internal/machine"
)

func randData(n int, seed uint64) []float64 {
	rng := rand.New(rand.NewPCG(seed, 5))
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.Float64()*2000 - 1000
	}
	return v
}

func TestSortCorrect(t *testing.T) {
	f := func(seed uint64) bool {
		n := int(seed%2000) + 10
		data := randData(n, seed)
		h := machine.TwoLevel(64)
		got, err := Sort(h, 64, data)
		if err != nil {
			return false
		}
		want := append([]float64(nil), data...)
		sort.Float64s(want)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSortDoesNotMutateInput(t *testing.T) {
	data := randData(500, 3)
	orig := append([]float64(nil), data...)
	h := machine.TwoLevel(64)
	if _, err := Sort(h, 64, data); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if data[i] != orig[i] {
			t.Fatal("input mutated")
		}
	}
}

func TestSortTrafficMatchesPrediction(t *testing.T) {
	for _, tc := range []struct{ n, m int }{
		{100, 256}, // fits: one pass
		{4096, 64},
		{20000, 128},
	} {
		h := machine.TwoLevel(int64(tc.m))
		if _, err := Sort(h, tc.m, randData(tc.n, uint64(tc.n))); err != nil {
			t.Fatal(err)
		}
		wantL, wantS := PredictTraffic(tc.n, tc.m)
		c := h.Interface(0)
		if c.LoadWords != wantL || c.StoreWords != wantS {
			t.Fatalf("n=%d m=%d: got (%d,%d) want (%d,%d)",
				tc.n, tc.m, c.LoadWords, c.StoreWords, wantL, wantS)
		}
	}
}

// The Section 9 conjecture's exhibit: the I/O-optimal sort's stores equal
// its loads for every fast-memory size — writes are never avoided.
func TestSortStoresEqualLoads(t *testing.T) {
	n := 8192
	data := randData(n, 9)
	for _, m := range []int{32, 128, 1024} {
		h := machine.TwoLevel(int64(m))
		if _, err := Sort(h, m, data); err != nil {
			t.Fatal(err)
		}
		c := h.Interface(0)
		if c.LoadWords != c.StoreWords {
			t.Fatalf("m=%d: loads %d != stores %d", m, c.LoadWords, c.StoreWords)
		}
		if !h.Theorem1Holds(0) || !h.ResidencyBalanced(0) {
			t.Fatalf("m=%d: model invariants violated", m)
		}
	}
}

// Larger fast memory means fewer passes, hence less total traffic.
func TestSortTrafficShrinksWithMemory(t *testing.T) {
	n := 16384
	data := randData(n, 11)
	prev := int64(1 << 62)
	for _, m := range []int{32, 256, 4096} {
		h := machine.TwoLevel(int64(m))
		if _, err := Sort(h, m, data); err != nil {
			t.Fatal(err)
		}
		tr := h.Traffic(0)
		if tr > prev {
			t.Fatalf("m=%d: traffic %d should not exceed smaller-memory %d", m, tr, prev)
		}
		prev = tr
	}
}

func TestSortTinyMemoryRejected(t *testing.T) {
	h := machine.TwoLevel(8)
	if _, err := Sort(h, 8, randData(100, 1)); err == nil {
		t.Fatal("want too-small error")
	}
}

func TestSortDuplicatesAndSortedInput(t *testing.T) {
	h := machine.TwoLevel(64)
	data := make([]float64, 1000)
	for i := range data {
		data[i] = float64(i % 7)
	}
	got, err := Sort(h, 64, data)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] > got[i] {
			t.Fatal("not sorted")
		}
	}
}

// Regression for the trailing single-run merge group: with n=4096, m=64 the
// run formation makes 64 runs and fanout 7, so the first pass has a
// trailing group of exactly one run (64 % 7 == 1). That run must stay in
// place — traffic is one full pass minus its words — and the result must
// still be sorted. The old code round-tripped it, charging 64 extra loads
// and stores.
func TestSortTrailingSingleRunGroupSkipped(t *testing.T) {
	n, m := 4096, 64
	runs := (n + m - 1) / m
	fanout := m/8 - 1
	if runs%fanout != 1 {
		t.Fatalf("test geometry broken: %d runs %% %d fanout = %d, want 1", runs, fanout, runs%fanout)
	}
	h := machine.TwoLevel(int64(m))
	data := randData(n, 77)
	got, err := Sort(h, m, data)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]float64(nil), data...)
	sort.Float64s(want)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("not sorted at %d", i)
		}
	}
	c := h.Interface(0)
	wantL, wantS := PredictTraffic(n, m)
	if c.LoadWords != wantL || c.StoreWords != wantS {
		t.Fatalf("got (%d,%d) want (%d,%d)", c.LoadWords, c.StoreWords, wantL, wantS)
	}
	// The skip must actually save a pass over the trailing run's words:
	// naive passes*n would be 4*4096 loads, the skip saves 64 on pass one.
	if naive := int64(4 * n); c.LoadWords >= naive {
		t.Fatalf("loads %d not below naive full-pass count %d", c.LoadWords, naive)
	}
	if !h.Theorem1Holds(0) || !h.ResidencyBalanced(0) {
		t.Fatal("model invariants violated")
	}
}

// Degenerate edges: n=0 and n=1 move nothing and compare nothing; m exactly
// 32 (the minimum) and runs shorter than the 8-word buffer still balance
// residency and match the prediction exactly.
func TestSortDegenerateEdges(t *testing.T) {
	for _, tc := range []struct{ n, m int }{
		{0, 32}, {1, 32}, {1, 1024},
		{33, 32},   // trailing run of one word, shorter than buf
		{37, 32},   // trailing run of 5 < buf words
		{8192, 32}, // minimum memory, 256 runs, fanout clamp area
		{65, 64},   // single trailing word after one full run
	} {
		h := machine.TwoLevel(int64(tc.m))
		data := randData(tc.n, uint64(tc.n)+101)
		got, err := Sort(h, tc.m, data)
		if err != nil {
			t.Fatal(err)
		}
		want := append([]float64(nil), data...)
		sort.Float64s(want)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d m=%d: not sorted", tc.n, tc.m)
			}
		}
		c := h.Interface(0)
		wantL, wantS := PredictTraffic(tc.n, tc.m)
		if c.LoadWords != wantL || c.StoreWords != wantS {
			t.Fatalf("n=%d m=%d: got (%d,%d) want (%d,%d)",
				tc.n, tc.m, c.LoadWords, c.StoreWords, wantL, wantS)
		}
		if tc.n <= 1 && (c.LoadWords != 0 || h.FlopCount() != 0) {
			t.Fatalf("n=%d: charged %d loads %d flops for a no-op sort", tc.n, c.LoadWords, h.FlopCount())
		}
		if !h.Theorem1Holds(0) || !h.ResidencyBalanced(0) {
			t.Fatalf("n=%d m=%d: model invariants violated", tc.n, tc.m)
		}
	}
}

// SortWriteEfficient: sorted output, n stores exactly, traffic matching the
// prediction, and model invariants on a strictly-sized fast memory.
func TestSortWriteEfficient(t *testing.T) {
	for _, tc := range []struct{ n, m int }{
		{100, 256}, // fits in fast memory
		{1000, 64},
		{4096, 64},
		{777, 32},
		{0, 32}, {1, 32},
	} {
		h := machine.TwoLevel(int64(tc.m))
		data := randData(tc.n, uint64(tc.n)+5)
		got, err := SortWriteEfficient(h, tc.m, data)
		if err != nil {
			t.Fatal(err)
		}
		want := append([]float64(nil), data...)
		sort.Float64s(want)
		if len(got) != len(want) {
			t.Fatalf("n=%d m=%d: length %d want %d", tc.n, tc.m, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d m=%d: mismatch at %d", tc.n, tc.m, i)
			}
		}
		c := h.Interface(0)
		wantL, wantS := PredictTrafficWriteEfficient(tc.n, tc.m)
		if c.LoadWords != wantL || c.StoreWords != wantS {
			t.Fatalf("n=%d m=%d: got (%d,%d) want (%d,%d)",
				tc.n, tc.m, c.LoadWords, c.StoreWords, wantL, wantS)
		}
		if tc.n > tc.m && c.StoreWords != int64(tc.n) {
			t.Fatalf("n=%d m=%d: %d stores, want exactly n", tc.n, tc.m, c.StoreWords)
		}
		if !h.Theorem1Holds(0) || !h.ResidencyBalanced(0) {
			t.Fatalf("n=%d m=%d: model invariants violated", tc.n, tc.m)
		}
	}
}

func TestSortWriteEfficientDoesNotMutateInput(t *testing.T) {
	data := randData(500, 13)
	orig := append([]float64(nil), data...)
	h := machine.TwoLevel(64)
	if _, err := SortWriteEfficient(h, 64, data); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if data[i] != orig[i] {
			t.Fatal("input mutated")
		}
	}
}

func TestSortWriteEfficientDuplicates(t *testing.T) {
	h := machine.TwoLevel(64)
	data := make([]float64, 1000)
	for i := range data {
		data[i] = float64(i % 7)
	}
	got, err := SortWriteEfficient(h, 64, data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1000 {
		t.Fatalf("lost elements: %d", len(got))
	}
	counts := map[float64]int{}
	for i, v := range got {
		if i > 0 && got[i-1] > v {
			t.Fatal("not sorted")
		}
		counts[v]++
	}
	// 1000 = 7*142 + 6: values 0..5 appear 143 times, value 6 appears 142.
	for v := 0; v < 7; v++ {
		want := 143
		if v == 6 {
			want = 142
		}
		if counts[float64(v)] != want {
			t.Fatalf("value %d count %d want %d", v, counts[float64(v)], want)
		}
	}
}

// SortOmega at ω=1 is the classical merge sort, bit for bit: same strategy,
// same output, same counters.
func TestSortOmegaUnitIsClassical(t *testing.T) {
	n, m := 4096, 64
	data := randData(n, 21)
	h1 := machine.TwoLevel(int64(m))
	want, err := Sort(h1, m, data)
	if err != nil {
		t.Fatal(err)
	}
	h2 := machine.TwoLevel(int64(m))
	got, strat, err := SortOmega(h2, m, 1, data)
	if err != nil {
		t.Fatal(err)
	}
	if strat != StrategyMerge {
		t.Fatalf("ω=1 chose %v", strat)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatal("output differs from classical")
		}
	}
	c1, c2 := h1.Interface(0), h2.Interface(0)
	if c1 != c2 || h1.FlopCount() != h2.FlopCount() {
		t.Fatalf("counters differ: %+v vs %+v", c1, c2)
	}
}

// As ω grows the planner must cross over from merge to small-write, and the
// realized traffic must match PredictTrafficOmega exactly at every ω.
func TestSortOmegaCrossover(t *testing.T) {
	n, m := 4096, 64
	data := randData(n, 23)
	sawMerge, sawSmall := false, false
	for _, omega := range []float64{1, 2, 4, 8, 32, 128, 1024} {
		h := machine.TwoLevel(int64(m))
		got, strat, err := SortOmega(h, m, omega, data)
		if err != nil {
			t.Fatal(err)
		}
		want := append([]float64(nil), data...)
		sort.Float64s(want)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("ω=%g: not sorted", omega)
			}
		}
		wantL, wantS, wantStrat := PredictTrafficOmega(n, m, omega)
		c := h.Interface(0)
		if strat != wantStrat || c.LoadWords != wantL || c.StoreWords != wantS {
			t.Fatalf("ω=%g: strat %v (%d,%d) want %v (%d,%d)",
				omega, strat, c.LoadWords, c.StoreWords, wantStrat, wantL, wantS)
		}
		switch strat {
		case StrategyMerge:
			sawMerge = true
		case StrategySmallWrite:
			sawSmall = true
		}
		if !h.Theorem1Holds(0) || !h.ResidencyBalanced(0) {
			t.Fatalf("ω=%g: model invariants violated", omega)
		}
	}
	if !sawMerge || !sawSmall {
		t.Fatalf("sweep never crossed over: merge=%v small=%v", sawMerge, sawSmall)
	}
}

// The planner's chosen schedule is never costlier under reads + ω·writes
// than the schedule it rejected.
func TestPlanOmegaPicksCheaper(t *testing.T) {
	for _, n := range []int{100, 1000, 4096, 20000} {
		for _, m := range []int{32, 64, 256} {
			for _, omega := range []float64{1, 3, 8, 100} {
				buf := MergeBuf(omega)
				ml, ms := predictMergeTraffic(n, m, buf)
				sl, ss := PredictTrafficWriteEfficient(n, m)
				mergeCost := float64(ml) + omega*float64(ms)
				smallCost := float64(sl) + omega*float64(ss)
				gotL, gotS, _ := PredictTrafficOmega(n, m, omega)
				gotCost := float64(gotL) + omega*float64(gotS)
				if best := math.Min(mergeCost, smallCost); gotCost != best {
					t.Fatalf("n=%d m=%d ω=%g: cost %g want %g", n, m, omega, gotCost, best)
				}
			}
		}
	}
}

// Property test across random n, m, ω: both variants agree with the
// reference sort and with their predictions.
func TestSortVariantsPropertyRandom(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 99))
		n := int(rng.Uint64() % 3000)
		m := 32 + int(rng.Uint64()%200)
		omega := math.Exp(rng.Float64() * 7) // 1 .. ~1096
		data := randData(n, seed)
		want := append([]float64(nil), data...)
		sort.Float64s(want)

		check := func(got []float64, h *machine.Hierarchy, wantL, wantS int64) bool {
			if len(got) != len(want) {
				return false
			}
			for i := range want {
				if got[i] != want[i] {
					return false
				}
			}
			c := h.Interface(0)
			return c.LoadWords == wantL && c.StoreWords == wantS &&
				h.Theorem1Holds(0) && h.ResidencyBalanced(0)
		}

		h1 := machine.TwoLevel(int64(m))
		out1, err := Sort(h1, m, data)
		if err != nil {
			return false
		}
		l1, s1 := PredictTraffic(n, m)
		if !check(out1, h1, l1, s1) {
			return false
		}

		h2 := machine.TwoLevel(int64(m))
		out2, err := SortWriteEfficient(h2, m, data)
		if err != nil {
			return false
		}
		l2, s2 := PredictTrafficWriteEfficient(n, m)
		if !check(out2, h2, l2, s2) {
			return false
		}

		h3 := machine.TwoLevel(int64(m))
		out3, _, err := SortOmega(h3, m, omega, data)
		if err != nil {
			return false
		}
		l3, s3, _ := PredictTrafficOmega(n, m, omega)
		return check(out3, h3, l3, s3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
