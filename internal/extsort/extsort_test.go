package extsort

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"

	"writeavoid/internal/machine"
)

func randData(n int, seed uint64) []float64 {
	rng := rand.New(rand.NewPCG(seed, 5))
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.Float64()*2000 - 1000
	}
	return v
}

func TestSortCorrect(t *testing.T) {
	f := func(seed uint64) bool {
		n := int(seed%2000) + 10
		data := randData(n, seed)
		h := machine.TwoLevel(64)
		got, err := Sort(h, 64, data)
		if err != nil {
			return false
		}
		want := append([]float64(nil), data...)
		sort.Float64s(want)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSortDoesNotMutateInput(t *testing.T) {
	data := randData(500, 3)
	orig := append([]float64(nil), data...)
	h := machine.TwoLevel(64)
	if _, err := Sort(h, 64, data); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if data[i] != orig[i] {
			t.Fatal("input mutated")
		}
	}
}

func TestSortTrafficMatchesPrediction(t *testing.T) {
	for _, tc := range []struct{ n, m int }{
		{100, 256}, // fits: one pass
		{4096, 64},
		{20000, 128},
	} {
		h := machine.TwoLevel(int64(tc.m))
		if _, err := Sort(h, tc.m, randData(tc.n, uint64(tc.n))); err != nil {
			t.Fatal(err)
		}
		wantL, wantS := PredictTraffic(tc.n, tc.m)
		c := h.Interface(0)
		if c.LoadWords != wantL || c.StoreWords != wantS {
			t.Fatalf("n=%d m=%d: got (%d,%d) want (%d,%d)",
				tc.n, tc.m, c.LoadWords, c.StoreWords, wantL, wantS)
		}
	}
}

// The Section 9 conjecture's exhibit: the I/O-optimal sort's stores equal
// its loads for every fast-memory size — writes are never avoided.
func TestSortStoresEqualLoads(t *testing.T) {
	n := 8192
	data := randData(n, 9)
	for _, m := range []int{32, 128, 1024} {
		h := machine.TwoLevel(int64(m))
		if _, err := Sort(h, m, data); err != nil {
			t.Fatal(err)
		}
		c := h.Interface(0)
		if c.LoadWords != c.StoreWords {
			t.Fatalf("m=%d: loads %d != stores %d", m, c.LoadWords, c.StoreWords)
		}
		if !h.Theorem1Holds(0) || !h.ResidencyBalanced(0) {
			t.Fatalf("m=%d: model invariants violated", m)
		}
	}
}

// Larger fast memory means fewer passes, hence less total traffic.
func TestSortTrafficShrinksWithMemory(t *testing.T) {
	n := 16384
	data := randData(n, 11)
	prev := int64(1 << 62)
	for _, m := range []int{32, 256, 4096} {
		h := machine.TwoLevel(int64(m))
		if _, err := Sort(h, m, data); err != nil {
			t.Fatal(err)
		}
		tr := h.Traffic(0)
		if tr > prev {
			t.Fatalf("m=%d: traffic %d should not exceed smaller-memory %d", m, tr, prev)
		}
		prev = tr
	}
}

func TestSortTinyMemoryRejected(t *testing.T) {
	h := machine.TwoLevel(8)
	if _, err := Sort(h, 8, randData(100, 1)); err == nil {
		t.Fatal("want too-small error")
	}
}

func TestSortDuplicatesAndSortedInput(t *testing.T) {
	h := machine.TwoLevel(64)
	data := make([]float64, 1000)
	for i := range data {
		data[i] = float64(i % 7)
	}
	got, err := Sort(h, 64, data)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] > got[i] {
			t.Fatal("not sorted")
		}
	}
}
