// Package lowerbounds collects the communication and write lower bounds that
// "Write-Avoiding Algorithms" (Carson et al., 2015) builds on, in the
// W = Omega(#flops / f(M)) form of Section 2.1, plus the parallel bounds W1,
// W2, W3 of Section 7 and the Theorem 4 exclusion check.
//
// These are asymptotic bounds; the functions return the bound expression
// without the hidden constant, and the checker helpers compare measurements
// against them with an explicit slack factor.
package lowerbounds

import "math"

// Omega0 is log2(7), Strassen's exponent.
const Omega0 = 2.8073549220576042 // log2 7

// ClassicalMatMulTraffic is the Hong-Kung / Irony-Toledo-Tiskin bound on
// loads+stores for classical (three-nested-loop) m x n x l matrix
// multiplication with fast memory M: Omega(m*n*l / sqrt(M)).
func ClassicalMatMulTraffic(m, n, l int, M int64) float64 {
	return float64(m) * float64(n) * float64(l) / math.Sqrt(float64(M))
}

// StrassenTraffic is the Ballard-Demmel-Holtz-Schwartz bound for Strassen:
// Omega(n^omega0 / M^(omega0/2 - 1)).
func StrassenTraffic(n int, M int64) float64 {
	return math.Pow(float64(n), Omega0) / math.Pow(float64(M), Omega0/2-1)
}

// NBodyTraffic is the bound for the direct (N,k)-body problem:
// Omega(N^k / M^(k-1)).
func NBodyTraffic(n, k int, M int64) float64 {
	return math.Pow(float64(n), float64(k)) / math.Pow(float64(M), float64(k-1))
}

// FFTTraffic is the Hong-Kung bound for the FFT:
// Omega(n*log(n) / log(M)).
func FFTTraffic(n int, M int64) float64 {
	if M < 2 {
		M = 2
	}
	return float64(n) * math.Log2(float64(n)) / math.Log2(float64(M))
}

// WriteBoundSlow is the trivial but tight lower bound on writes to the
// lowest memory level: the output must land there.
func WriteBoundSlow(outputWords int64) int64 { return outputWords }

// Parallel bounds of Section 7 for n x n classical linear algebra on P
// processors.

// W1 is the per-processor output bound: n^2/P words must be written to the
// lowest local level (assuming balanced output).
func W1(n, p int) float64 { return float64(n) * float64(n) / float64(p) }

// W2 is the interprocessor bandwidth bound with replication factor c:
// Omega(n^2 / sqrt(P*c)), valid for 1 <= c <= P^(1/3).
func W2(n, p int, c float64) float64 {
	return float64(n) * float64(n) / math.Sqrt(float64(p)*c)
}

// W3 is the per-processor fast-memory traffic bound:
// Omega((n^3/P)/sqrt(M1)).
func W3(n, p int, m1 int64) float64 {
	return float64(n) * float64(n) * float64(n) / float64(p) / math.Sqrt(float64(m1))
}

// MaxReplication is the 2.5D limit c <= P^(1/3).
func MaxReplication(p int) float64 { return math.Cbrt(float64(p)) }

// Theorem4MinL3Writes is the paper's Theorem 4: if an algorithm attains the
// interprocessor bound W2 (so its L2 fills come from local L3), then at
// least ~n^2/P^(2/3) words must be written to L3 from L2 — strictly more
// than the W1 = n^2/P floor.
func Theorem4MinL3Writes(n, p int) float64 {
	return float64(n) * float64(n) / math.Pow(float64(p), 2.0/3.0)
}

// Theorem4Excludes reports whether a measured execution respects the
// Theorem 4 exclusion: it must NOT simultaneously be within slack of both
// the network bound W2 (taking the most favorable c = P^(1/3)) and the
// L3-write bound W1. Returns true when the exclusion holds (i.e. at least
// one bound is exceeded by more than the slack factor).
func Theorem4Excludes(n, p int, networkWords, l3Writes float64, slack float64) bool {
	attainsW2 := networkWords <= slack*W2(n, p, MaxReplication(p))
	attainsW1 := l3Writes <= slack*W1(n, p)
	return !(attainsW2 && attainsW1)
}

// FofM returns the f(M) of the W = Omega(#flops/f(M)) formulation for the
// algorithm classes treated in the paper.
type FofM func(M int64) float64

// FClassical is f(M) = sqrt(M) (classical linear algebra).
func FClassical(M int64) float64 { return math.Sqrt(float64(M)) }

// FStrassen is f(M) = M^(omega0/2 - 1).
func FStrassen(M int64) float64 { return math.Pow(float64(M), Omega0/2-1) }

// FNBody2 is f(M) = M (direct 2-body).
func FNBody2(M int64) float64 { return float64(M) }

// FFFT is f(M) = log2(M).
func FFFT(M int64) float64 {
	if M < 2 {
		M = 2
	}
	return math.Log2(float64(M))
}

// MultiLevelWriteBound gives the Section 2.1 WA target for level s of an
// r-level hierarchy: a WA algorithm performs Theta(#flops/f(M_s)) writes to
// L_s for s < r but only Theta(output) writes to the lowest level L_r.
func MultiLevelWriteBound(flops int64, f FofM, levelSize int64, lowest bool, outputWords int64) float64 {
	if lowest {
		return float64(outputWords)
	}
	return float64(flops) / f(levelSize)
}

// Asymmetric (M, ω) model bounds (Blelloch-Fineman-Gibbons-Gu,
// arXiv:1511.01038): cost = reads + ω·writes per word crossing the
// slow-memory interface.

// OmegaCost prices a measured (loads, stores) word pair in the (M, ω)
// model — the objective the ω-aware planners minimize.
func OmegaCost(loads, stores int64, omega float64) float64 {
	return float64(loads) + omega*float64(stores)
}

// OmegaSortCostFloor is a lower bound on any comparison sort's (M, ω) cost
// for n > M words: every input word must be read and every output word
// written at least once, giving n(1 + ω); independently the read side alone
// obeys the Aggarwal-Vitter Ω(n log_M n) term. The returned value is the
// larger of the two — like the package's other bounds, without the hidden
// constant.
func OmegaSortCostFloor(n int, M int64, omega float64) float64 {
	if n <= 0 {
		return 0
	}
	io := float64(n) * (1 + omega)
	if int64(n) <= M || M < 2 {
		return io
	}
	av := float64(n) * math.Log(float64(n)) / math.Log(float64(M))
	return math.Max(io, av)
}

// OmegaWriteFloorDP is the write floor for a DP table computation that must
// emit outputWords results: stores >= outputWords, so the write side of the
// (M, ω) cost is at least ω·outputWords no matter how much recomputation
// the schedule buys. The write-efficient LCS and Floyd-Warshall schedules
// approach it within their boundary factor.
func OmegaWriteFloorDP(outputWords int64, omega float64) float64 {
	return omega * float64(outputWords)
}
