package lowerbounds

import (
	"math"
	"testing"
	"testing/quick"
)

func TestClassicalMatMulTraffic(t *testing.T) {
	// n^3 / sqrt(M): 64^3 / sqrt(16) = 262144/4.
	if got := ClassicalMatMulTraffic(64, 64, 64, 16); got != 65536 {
		t.Fatalf("got %g", got)
	}
}

func TestBoundsDecreaseInM(t *testing.T) {
	f := func(seed uint64) bool {
		m1 := int64(seed%1000 + 4)
		m2 := m1 * 4
		return ClassicalMatMulTraffic(128, 128, 128, m1) > ClassicalMatMulTraffic(128, 128, 128, m2) &&
			StrassenTraffic(128, m1) > StrassenTraffic(128, m2) &&
			NBodyTraffic(128, 2, m1) > NBodyTraffic(128, 2, m2) &&
			FFTTraffic(128, m1) > FFTTraffic(128, m2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestStrassenBelowClassical(t *testing.T) {
	// Strassen's bound is asymptotically smaller than classical for the
	// same n and M (when n^2 >> M).
	if StrassenTraffic(4096, 1024) >= ClassicalMatMulTraffic(4096, 4096, 4096, 1024) {
		t.Fatal("Strassen bound should be below classical")
	}
}

func TestOmega0(t *testing.T) {
	if math.Abs(Omega0-math.Log2(7)) > 1e-12 {
		t.Fatalf("omega0 %v vs log2(7) %v", Omega0, math.Log2(7))
	}
}

func TestFofMCatalogue(t *testing.T) {
	if FClassical(64) != 8 {
		t.Fatal("FClassical")
	}
	if FNBody2(64) != 64 {
		t.Fatal("FNBody2")
	}
	if FFFT(64) != 6 {
		t.Fatal("FFFT")
	}
	if math.Abs(FStrassen(4)-math.Pow(4, Omega0/2-1)) > 1e-12 {
		t.Fatal("FStrassen")
	}
	if FFFT(1) <= 0 {
		t.Fatal("FFFT must clamp M<2")
	}
}

func TestParallelBoundsOrdering(t *testing.T) {
	// W1 <= W2 <= W3 for n >> sqrt(P) >> 1 (paper Section 7).
	n, p := 1<<14, 64
	m1 := int64(1 << 10)
	w1, w2, w3 := W1(n, p), W2(n, p, 1), W3(n, p, m1)
	if !(w1 < w2 && w2 < w3) {
		t.Fatalf("expected W1 < W2 < W3: %g %g %g", w1, w2, w3)
	}
}

func TestW2ReplicationHelps(t *testing.T) {
	n, p := 4096, 64
	if W2(n, p, MaxReplication(p)) >= W2(n, p, 1) {
		t.Fatal("replication should lower the network bound")
	}
	if math.Abs(MaxReplication(64)-4) > 1e-12 {
		t.Fatalf("P^(1/3) for 64 should be 4, got %g", MaxReplication(64))
	}
}

func TestTheorem4MinL3WritesAboveW1(t *testing.T) {
	n, p := 4096, 64
	if Theorem4MinL3Writes(n, p) <= W1(n, p) {
		t.Fatal("Theorem 4's floor must exceed the trivial output bound")
	}
}

func TestTheorem4Excludes(t *testing.T) {
	n, p := 4096, 64
	w1 := W1(n, p)
	w2 := W2(n, p, MaxReplication(p))
	// Attaining both must be flagged as violating the exclusion.
	if Theorem4Excludes(n, p, w2, w1, 2) {
		t.Fatal("attaining both bounds should violate the exclusion")
	}
	// Attaining only the network bound (like 2.5DMML3ooL2) is fine.
	if !Theorem4Excludes(n, p, w2, 100*w1, 2) {
		t.Fatal("network-optimal algorithm should satisfy the exclusion")
	}
	// Attaining only the write bound (like SUMMAL3ooL2) is fine.
	if !Theorem4Excludes(n, p, 100*w2, w1, 2) {
		t.Fatal("write-optimal algorithm should satisfy the exclusion")
	}
}

func TestMultiLevelWriteBound(t *testing.T) {
	// Lowest level: just the output.
	if got := MultiLevelWriteBound(1000000, FClassical, 64, true, 4096); got != 4096 {
		t.Fatalf("lowest: %g", got)
	}
	// Intermediate level: flops/f(M).
	if got := MultiLevelWriteBound(1000000, FClassical, 64, false, 4096); got != 125000 {
		t.Fatalf("intermediate: %g", got)
	}
}

func TestWriteBoundSlow(t *testing.T) {
	if WriteBoundSlow(42) != 42 {
		t.Fatal("output bound is the output size")
	}
}

// The (M, ω) bounds: cost pricing is linear in ω, the sort floor reduces to
// n(1+ω) in-memory and to the Aggarwal-Vitter term when reads dominate, and
// measured variants must sit above their floors.
func TestOmegaBounds(t *testing.T) {
	if got := OmegaCost(100, 10, 8); got != 180 {
		t.Fatalf("OmegaCost = %g want 180", got)
	}
	// In-memory: read+write floor only.
	if got := OmegaSortCostFloor(100, 256, 4); got != 500 {
		t.Fatalf("in-memory floor = %g want 500", got)
	}
	// External with huge ω: the n(1+ω) term dominates the AV term.
	n, M := 4096, int64(64)
	big := OmegaSortCostFloor(n, M, 1000)
	if big != float64(n)*1001 {
		t.Fatalf("write-dominated floor = %g want %g", big, float64(n)*1001)
	}
	// External with ω=1: the AV term dominates (log_64 4096 = 2 passes).
	sym := OmegaSortCostFloor(n, M, 1)
	if sym <= float64(2*n)-1e-9 || sym > float64(3*n) {
		t.Fatalf("read-dominated floor = %g, want ~%d", sym, 2*n)
	}
	if got := OmegaWriteFloorDP(1000, 16); got != 16000 {
		t.Fatalf("DP write floor = %g want 16000", got)
	}
	if got := OmegaSortCostFloor(0, 64, 8); got != 0 {
		t.Fatalf("empty floor = %g want 0", got)
	}
}
