// Package dp implements dynamic-programming kernels — longest common
// subsequence and Floyd–Warshall all-pairs shortest paths — in two
// schedules on the explicit machine model: a classical schedule that
// materializes every table cell in slow memory, and a write-efficient
// schedule in the style of Blelloch et al. (arXiv:1511.01038 §6) that
// stores only tile boundaries (LCS) or block results (FW), trading extra
// reads for asymptotically fewer slow-memory writes. Both schedules of a
// kernel compute identical answers; only the charged traffic differs, and
// the Predict* functions reproduce the counts word for word.
package dp

import (
	"fmt"

	"writeavoid/internal/intmath"
	"writeavoid/internal/machine"
)

// minMemory is the smallest fast memory any kernel here accepts, matching
// extsort's floor so the experiment sweeps can share machine sizes.
const minMemory = 32

// lcsTileSize returns the square tile side for the LCS kernels: peak
// residency per tile is bounded by 2h + 3w + 1 <= 5b + 1 words (boundaries,
// string chunks, two rolling rows), so b = (m-1)/6 leaves slack.
func lcsTileSize(m int) int {
	b := (m - 1) / 6
	if b < 1 {
		b = 1
	}
	return b
}

// lcsRun walks the (la+1)x(lb+1) LCS table tile by tile, charging either
// the classical schedule (every interior cell stored: la*lb slow-memory
// writes) or the write-efficient one (only each tile's bottom row and right
// column stored: w + h - 1 writes per h-by-w tile, ~2*la*lb/b total).
//
// Per tile the schedule is: load (or Init, when it is the all-zero row 0 or
// column 0) the top boundary row plus its corner and the left boundary
// column, load the two string chunks, then produce the tile row by row with
// two rows resident. A finished row is dead one row later: classical stores
// it (materializing the table), write-efficient stores only its right-column
// cell and discards the rest. The final row is stored whole by both — it is
// the bottom boundary the next tile row block loads back.
func lcsRun(h *machine.Hierarchy, m int, a, bs []byte, writeEfficient bool) (int, error) {
	la, lb := len(a), len(bs)
	if m < minMemory {
		return 0, fmt.Errorf("dp: fast memory %d too small (need >= %d words)", m, minMemory)
	}
	if la == 0 || lb == 0 {
		return 0, nil
	}
	b := lcsTileSize(m)
	dp := make([]int32, (la+1)*(lb+1))
	idx := func(i, j int) int { return i*(lb+1) + j }
	for i0 := 0; i0 < la; i0 += b {
		th := min(b, la-i0)
		for j0 := 0; j0 < lb; j0 += b {
			tw := min(b, lb-j0)
			// Top boundary (tw words + the northwest corner) and left
			// boundary (th words): zeros are created in place, everything
			// else was stored by an earlier tile.
			if i0 == 0 {
				h.Init(0, int64(tw+1))
			} else if j0 == 0 {
				h.Load(0, int64(tw))
				h.Init(0, 1)
			} else {
				h.Load(0, int64(tw+1))
			}
			if j0 == 0 {
				h.Init(0, int64(th))
			} else {
				h.Load(0, int64(th))
			}
			h.Load(0, int64(th)) // a chunk
			h.Load(0, int64(tw)) // b chunk
			for r := 0; r < th; r++ {
				i := i0 + r + 1
				h.Init(0, int64(tw))
				for c := 0; c < tw; c++ {
					j := j0 + c + 1
					if a[i-1] == bs[j-1] {
						dp[idx(i, j)] = dp[idx(i-1, j-1)] + 1
					} else {
						dp[idx(i, j)] = max(dp[idx(i-1, j)], dp[idx(i, j-1)])
					}
				}
				h.Flops(int64(tw))
				switch {
				case r == 0:
					h.Discard(0, int64(tw+1)) // top boundary dead
				case writeEfficient:
					h.Store(0, 1) // right-column cell of row r-1
					h.Discard(0, int64(tw-1))
				default:
					h.Store(0, int64(tw)) // row r-1 joins the slow table
				}
			}
			h.Store(0, int64(tw))        // final row: bottom boundary
			h.Discard(0, int64(2*th+tw)) // left boundary + string chunks
		}
	}
	return int(dp[idx(la, lb)]), nil
}

// LCSClassical returns the longest-common-subsequence length of a and b,
// charging the classical blocked schedule that stores every one of the
// la*lb table cells to slow memory.
func LCSClassical(h *machine.Hierarchy, m int, a, b []byte) (int, error) {
	return lcsRun(h, m, a, b, false)
}

// LCSWriteEfficient returns the same LCS length while storing only tile
// boundaries — O(la*lb/b) slow-memory writes for tile side b ~ m/6 — at the
// cost of no extra reads (the classical schedule already reloads
// boundaries); the write saving is pure.
func LCSWriteEfficient(h *machine.Hierarchy, m int, a, b []byte) (int, error) {
	return lcsRun(h, m, a, b, true)
}

// predictLCS mirrors lcsRun's charging loops without touching data.
func predictLCS(la, lb, m int, writeEfficient bool) (loads, stores int64) {
	if la == 0 || lb == 0 {
		return 0, 0
	}
	b := lcsTileSize(m)
	for i0 := 0; i0 < la; i0 += b {
		th := min(b, la-i0)
		for j0 := 0; j0 < lb; j0 += b {
			tw := min(b, lb-j0)
			if i0 == 0 {
				// top boundary Init
			} else if j0 == 0 {
				loads += int64(tw)
			} else {
				loads += int64(tw + 1)
			}
			if j0 != 0 {
				loads += int64(th)
			}
			loads += int64(th + tw) // string chunks
			if writeEfficient {
				stores += int64(tw + th - 1)
			} else {
				stores += int64(th * tw)
			}
		}
	}
	return loads, stores
}

// PredictLCSClassical returns the exact slow-memory traffic of LCSClassical.
func PredictLCSClassical(la, lb, m int) (loads, stores int64) {
	return predictLCS(la, lb, m, false)
}

// PredictLCSWriteEfficient returns the exact slow-memory traffic of
// LCSWriteEfficient.
func PredictLCSWriteEfficient(la, lb, m int) (loads, stores int64) {
	return predictLCS(la, lb, m, true)
}

// FWClassical runs Floyd–Warshall on the flattened n-by-n distance matrix d
// (use +Inf for absent edges) with the classical row-streaming schedule:
// for each pivot k the pivot row stays resident while every row is loaded,
// relaxed, and stored back — n^3 + n^2 loads and n^3 stores. Fast memory
// must hold two rows (m >= 2n).
func FWClassical(h *machine.Hierarchy, m, n int, d []float64) ([]float64, error) {
	if len(d) != n*n {
		return nil, fmt.Errorf("dp: distance matrix has %d words, want %d", len(d), n*n)
	}
	if m < minMemory {
		return nil, fmt.Errorf("dp: fast memory %d too small (need >= %d words)", m, minMemory)
	}
	out := append([]float64(nil), d...)
	if n == 0 {
		return out, nil
	}
	if m < 2*n {
		return nil, fmt.Errorf("dp: fast memory %d cannot hold two rows of n=%d (need 2n)", m, n)
	}
	for k := 0; k < n; k++ {
		h.Load(0, int64(n)) // pivot row k
		for i := 0; i < n; i++ {
			h.Load(0, int64(n))
			for j := 0; j < n; j++ {
				if v := out[i*n+k] + out[k*n+j]; v < out[i*n+j] {
					out[i*n+j] = v
				}
			}
			h.Flops(int64(2 * n))
			h.Store(0, int64(n))
		}
		h.Discard(0, int64(n))
	}
	return out, nil
}

// PredictFWClassical returns the exact slow-memory traffic of FWClassical.
func PredictFWClassical(n, m int) (loads, stores int64) {
	if n == 0 {
		return 0, 0
	}
	nn := int64(n)
	return nn*nn*nn + nn*nn, nn * nn * nn
}

// fwBlockSize returns the block side for the write-efficient blocked FW:
// the inner phase holds three blocks at once, so b = floor(sqrt(m/3)).
func fwBlockSize(m int) int {
	b := intmath.Isqrt(int64(m / 3))
	if b < 1 {
		b = 1
	}
	return b
}

// fwBlockStarts returns the block starting offsets for side b over n.
func fwBlockStarts(n, b int) []int {
	var starts []int
	for s := 0; s < n; s += b {
		starts = append(starts, s)
	}
	return starts
}

// FWWriteEfficient runs the blocked Floyd–Warshall schedule: per pivot
// block K it processes the diagonal block, then K's row and column blocks
// against it, then every remaining block against its row/column partners —
// exactly one store per block per pivot phase, so ~n^3/b slow-memory writes
// against the classical n^3, at the cost of ~3x the loads. Block side is
// b = sqrt(m/3); every block result written is final for that phase.
func FWWriteEfficient(h *machine.Hierarchy, m, n int, d []float64) ([]float64, error) {
	if len(d) != n*n {
		return nil, fmt.Errorf("dp: distance matrix has %d words, want %d", len(d), n*n)
	}
	if m < minMemory {
		return nil, fmt.Errorf("dp: fast memory %d too small (need >= %d words)", m, minMemory)
	}
	out := append([]float64(nil), d...)
	if n == 0 {
		return out, nil
	}
	b := fwBlockSize(m)
	// relax applies the pivot-k range to block (i0..i0+si, j0..j0+sj).
	relax := func(k0, sk, i0, si, j0, sj int) {
		// out[i*n+k] is re-read per j: when the block spans column k the
		// loop itself updates it, and the refreshed value must be used.
		for k := k0; k < k0+sk; k++ {
			for i := i0; i < i0+si; i++ {
				for j := j0; j < j0+sj; j++ {
					if v := out[i*n+k] + out[k*n+j]; v < out[i*n+j] {
						out[i*n+j] = v
					}
				}
			}
		}
	}
	starts := fwBlockStarts(n, b)
	for _, k0 := range starts {
		sk := min(b, n-k0)
		// Phase 1: the diagonal block against itself.
		h.Load(0, int64(sk*sk))
		relax(k0, sk, k0, sk, k0, sk)
		h.Flops(int64(2 * sk * sk * sk))
		h.Store(0, int64(sk*sk))
		// Phase 2: K's row and column blocks, diagonal block resident.
		h.Load(0, int64(sk*sk))
		for _, j0 := range starts {
			if j0 == k0 {
				continue
			}
			sj := min(b, n-j0)
			h.Load(0, int64(sk*sj))
			relax(k0, sk, k0, sk, j0, sj)
			h.Flops(int64(2 * sk * sk * sj))
			h.Store(0, int64(sk*sj))
		}
		for _, i0 := range starts {
			if i0 == k0 {
				continue
			}
			si := min(b, n-i0)
			h.Load(0, int64(si*sk))
			relax(k0, sk, i0, si, k0, sk)
			h.Flops(int64(2 * sk * si * sk))
			h.Store(0, int64(si*sk))
		}
		h.Discard(0, int64(sk*sk))
		// Phase 3: everything else, holding (I,K), (K,J), (I,J).
		for _, i0 := range starts {
			if i0 == k0 {
				continue
			}
			si := min(b, n-i0)
			h.Load(0, int64(si*sk)) // (I,K) held across the J loop
			for _, j0 := range starts {
				if j0 == k0 {
					continue
				}
				sj := min(b, n-j0)
				h.Load(0, int64(sk*sj))
				h.Load(0, int64(si*sj))
				relax(k0, sk, i0, si, j0, sj)
				h.Flops(int64(2 * sk * si * sj))
				h.Store(0, int64(si*sj))
				h.Discard(0, int64(sk*sj))
			}
			h.Discard(0, int64(si*sk))
		}
	}
	return out, nil
}

// PredictFWWriteEfficient returns the exact slow-memory traffic of
// FWWriteEfficient by mirroring its block loops.
func PredictFWWriteEfficient(n, m int) (loads, stores int64) {
	if n == 0 {
		return 0, 0
	}
	b := fwBlockSize(m)
	starts := fwBlockStarts(n, b)
	for _, k0 := range starts {
		sk := min(b, n-k0)
		loads += int64(sk * sk)
		stores += int64(sk * sk)
		loads += int64(sk * sk)
		for _, j0 := range starts {
			if j0 == k0 {
				continue
			}
			sj := min(b, n-j0)
			loads += int64(sk * sj)
			stores += int64(sk * sj)
		}
		for _, i0 := range starts {
			if i0 == k0 {
				continue
			}
			si := min(b, n-i0)
			loads += int64(si * sk)
			stores += int64(si * sk)
		}
		for _, i0 := range starts {
			if i0 == k0 {
				continue
			}
			si := min(b, n-i0)
			loads += int64(si * sk)
			for _, j0 := range starts {
				if j0 == k0 {
					continue
				}
				sj := min(b, n-j0)
				loads += int64(sk*sj) + int64(si*sj)
				stores += int64(si * sj)
			}
		}
	}
	return loads, stores
}
