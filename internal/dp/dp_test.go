package dp

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"writeavoid/internal/machine"
)

// naiveLCS is the reference: the full quadratic table.
func naiveLCS(a, b []byte) int {
	la, lb := len(a), len(b)
	prev := make([]int, lb+1)
	cur := make([]int, lb+1)
	for i := 1; i <= la; i++ {
		for j := 1; j <= lb; j++ {
			if a[i-1] == b[j-1] {
				cur[j] = prev[j-1] + 1
			} else {
				cur[j] = max(prev[j], cur[j-1])
			}
		}
		prev, cur = cur, prev
	}
	return prev[lb]
}

// naiveFW is the reference triple loop.
func naiveFW(n int, d []float64) []float64 {
	out := append([]float64(nil), d...)
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if v := out[i*n+k] + out[k*n+j]; v < out[i*n+j] {
					out[i*n+j] = v
				}
			}
		}
	}
	return out
}

func randBytes(n int, alphabet byte, rng *rand.Rand) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = byte(rng.Uint64() % uint64(alphabet))
	}
	return s
}

func randDist(n int, rng *rand.Rand) []float64 {
	d := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			switch {
			case i == j:
				d[i*n+j] = 0
			case rng.Uint64()%3 == 0:
				d[i*n+j] = math.Inf(1)
			default:
				d[i*n+j] = float64(rng.Uint64()%100) + 1
			}
		}
	}
	return d
}

func checkModel(t *testing.T, h *machine.Hierarchy, name string, wantL, wantS int64) {
	t.Helper()
	c := h.Interface(0)
	if c.LoadWords != wantL || c.StoreWords != wantS {
		t.Fatalf("%s: traffic (%d,%d) want (%d,%d)", name, c.LoadWords, c.StoreWords, wantL, wantS)
	}
	if !h.Theorem1Holds(0) || !h.ResidencyBalanced(0) {
		t.Fatalf("%s: model invariants violated", name)
	}
}

func TestLCSBothSchedules(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for _, tc := range []struct{ la, lb, m int }{
		{0, 10, 64}, {10, 0, 64}, {1, 1, 32},
		{5, 9, 32}, {40, 40, 32}, {100, 63, 64},
		{200, 150, 144}, {97, 101, 256},
	} {
		a := randBytes(tc.la, 4, rng)
		b := randBytes(tc.lb, 4, rng)
		want := naiveLCS(a, b)

		hc := machine.TwoLevel(int64(tc.m))
		got, err := LCSClassical(hc, tc.m, a, b)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("la=%d lb=%d m=%d: classical LCS %d want %d", tc.la, tc.lb, tc.m, got, want)
		}
		lc, sc := PredictLCSClassical(tc.la, tc.lb, tc.m)
		checkModel(t, hc, "lcs-classical", lc, sc)
		if tc.la > 0 && tc.lb > 0 && sc != int64(tc.la)*int64(tc.lb) {
			t.Fatalf("classical stores %d, want exactly la*lb=%d", sc, tc.la*tc.lb)
		}

		hw := machine.TwoLevel(int64(tc.m))
		got, err = LCSWriteEfficient(hw, tc.m, a, b)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("la=%d lb=%d m=%d: write-efficient LCS %d want %d", tc.la, tc.lb, tc.m, got, want)
		}
		lw, sw := PredictLCSWriteEfficient(tc.la, tc.lb, tc.m)
		checkModel(t, hw, "lcs-weff", lw, sw)
		if sw > sc {
			t.Fatalf("write-efficient stores %d exceed classical %d", sw, sc)
		}
		// The write saving is pure: same loads, only stores shrink.
		if lw != lc {
			t.Fatalf("write-efficient loads %d differ from classical %d", lw, lc)
		}
	}
}

// With tiles much smaller than the strings, the write-efficient schedule's
// stores are ~2/b of the classical ones.
func TestLCSWriteSavingScales(t *testing.T) {
	la, lb, m := 192, 192, 144
	_, sc := PredictLCSClassical(la, lb, m)
	_, sw := PredictLCSWriteEfficient(la, lb, m)
	b := lcsTileSize(m)
	if sw*int64(b) >= sc*3 {
		t.Fatalf("expected ~2/b=2/%d store ratio, got %d/%d", b, sw, sc)
	}
}

func TestFWBothSchedules(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for _, tc := range []struct{ n, m int }{
		{0, 32}, {1, 32}, {4, 32}, {7, 48},
		{16, 48}, {23, 64}, {32, 64}, {48, 160},
	} {
		d := randDist(tc.n, rng)
		want := naiveFW(tc.n, d)

		if tc.m >= 2*tc.n {
			hc := machine.TwoLevel(int64(tc.m))
			got, err := FWClassical(hc, tc.m, tc.n, d)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d m=%d: classical FW mismatch at %d", tc.n, tc.m, i)
				}
			}
			lc, sc := PredictFWClassical(tc.n, tc.m)
			checkModel(t, hc, "fw-classical", lc, sc)
		}

		hw := machine.TwoLevel(int64(tc.m))
		got, err := FWWriteEfficient(hw, tc.m, tc.n, d)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d m=%d: write-efficient FW mismatch at %d", tc.n, tc.m, i)
			}
		}
		lw, sw := PredictFWWriteEfficient(tc.n, tc.m)
		checkModel(t, hw, "fw-weff", lw, sw)
		if lc, sc := PredictFWClassical(tc.n, tc.m); tc.n > fwBlockSize(tc.m) {
			if sw >= sc {
				t.Fatalf("n=%d m=%d: blocked stores %d not below classical %d", tc.n, tc.m, sw, sc)
			}
			_ = lc
		}
	}
}

func TestFWClassicalRejectsTinyMemory(t *testing.T) {
	d := randDist(32, rand.New(rand.NewPCG(5, 6)))
	if _, err := FWClassical(machine.TwoLevel(48), 48, 32, d); err == nil {
		t.Fatal("want two-rows error")
	}
	if _, err := FWClassical(machine.TwoLevel(16), 16, 4, randDist(4, rand.New(rand.NewPCG(5, 6)))); err == nil {
		t.Fatal("want too-small error")
	}
	if _, err := FWWriteEfficient(machine.TwoLevel(16), 16, 4, randDist(4, rand.New(rand.NewPCG(5, 6)))); err == nil {
		t.Fatal("want too-small error")
	}
	if _, err := FWClassical(machine.TwoLevel(64), 64, 4, make([]float64, 3)); err == nil {
		t.Fatal("want shape error")
	}
	if _, err := FWWriteEfficient(machine.TwoLevel(64), 64, 4, make([]float64, 3)); err == nil {
		t.Fatal("want shape error")
	}
	if _, err := LCSClassical(machine.TwoLevel(8), 8, []byte("ab"), []byte("ba")); err == nil {
		t.Fatal("want too-small error")
	}
}

func TestFWDoesNotMutateInput(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	d := randDist(16, rng)
	orig := append([]float64(nil), d...)
	if _, err := FWClassical(machine.TwoLevel(64), 64, 16, d); err != nil {
		t.Fatal(err)
	}
	if _, err := FWWriteEfficient(machine.TwoLevel(64), 64, 16, d); err != nil {
		t.Fatal(err)
	}
	for i := range d {
		if d[i] != orig[i] {
			t.Fatal("input mutated")
		}
	}
}

// Property test across random shapes: both schedules of both kernels agree
// with the references and with their predictions.
func TestDPPropertyRandom(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 42))
		la := int(rng.Uint64() % 120)
		lb := int(rng.Uint64() % 120)
		m := 32 + int(rng.Uint64()%300)
		a := randBytes(la, 3, rng)
		b := randBytes(lb, 3, rng)
		want := naiveLCS(a, b)
		h1 := machine.TwoLevel(int64(m))
		g1, err := LCSClassical(h1, m, a, b)
		if err != nil || g1 != want {
			return false
		}
		l1, s1 := PredictLCSClassical(la, lb, m)
		c1 := h1.Interface(0)
		if c1.LoadWords != l1 || c1.StoreWords != s1 || !h1.ResidencyBalanced(0) {
			return false
		}
		h2 := machine.TwoLevel(int64(m))
		g2, err := LCSWriteEfficient(h2, m, a, b)
		if err != nil || g2 != want {
			return false
		}
		l2, s2 := PredictLCSWriteEfficient(la, lb, m)
		c2 := h2.Interface(0)
		if c2.LoadWords != l2 || c2.StoreWords != s2 || !h2.ResidencyBalanced(0) {
			return false
		}

		n := int(rng.Uint64() % 24)
		d := randDist(n, rng)
		fwWant := naiveFW(n, d)
		mf := max(m, 2*n)
		h3 := machine.TwoLevel(int64(mf))
		g3, err := FWClassical(h3, mf, n, d)
		if err != nil {
			return false
		}
		h4 := machine.TwoLevel(int64(m))
		g4, err := FWWriteEfficient(h4, m, n, d)
		if err != nil {
			return false
		}
		for i := range fwWant {
			if g3[i] != fwWant[i] || g4[i] != fwWant[i] {
				return false
			}
		}
		l3, s3 := PredictFWClassical(n, mf)
		l4, s4 := PredictFWWriteEfficient(n, m)
		c3, c4 := h3.Interface(0), h4.Interface(0)
		return c3.LoadWords == l3 && c3.StoreWords == s3 &&
			c4.LoadWords == l4 && c4.StoreWords == s4 &&
			h3.ResidencyBalanced(0) && h4.ResidencyBalanced(0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
