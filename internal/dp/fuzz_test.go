package dp

import (
	"math/rand/v2"
	"testing"

	"writeavoid/internal/machine"
)

// FuzzLCS checks both LCS schedules against the reference on fuzzed string
// shapes: same answer, traffic exactly as predicted, strict occupancy never
// violated (a residency bug panics the hierarchy).
func FuzzLCS(f *testing.F) {
	f.Add(uint64(1), uint16(40), uint16(40), uint16(64))
	f.Add(uint64(2), uint16(0), uint16(9), uint16(32))
	f.Add(uint64(3), uint16(150), uint16(1), uint16(200))
	f.Fuzz(func(t *testing.T, seed uint64, laRaw, lbRaw, mRaw uint16) {
		la := int(laRaw % 200)
		lb := int(lbRaw % 200)
		m := 32 + int(mRaw%400)
		rng := rand.New(rand.NewPCG(seed, 11))
		a := randBytes(la, 5, rng)
		b := randBytes(lb, 5, rng)
		want := naiveLCS(a, b)
		for _, we := range []bool{false, true} {
			h := machine.TwoLevel(int64(m))
			got, err := lcsRun(h, m, a, b, we)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("we=%v: LCS %d want %d", we, got, want)
			}
			wantL, wantS := predictLCS(la, lb, m, we)
			c := h.Interface(0)
			if c.LoadWords != wantL || c.StoreWords != wantS {
				t.Fatalf("we=%v: traffic (%d,%d) want (%d,%d)", we, c.LoadWords, c.StoreWords, wantL, wantS)
			}
			if !h.Theorem1Holds(0) || !h.ResidencyBalanced(0) {
				t.Fatalf("we=%v: model invariants violated", we)
			}
		}
	})
}

// FuzzFW checks both Floyd–Warshall schedules against the reference triple
// loop on fuzzed sizes and random weight matrices.
func FuzzFW(f *testing.F) {
	f.Add(uint64(1), uint8(8), uint16(64))
	f.Add(uint64(2), uint8(0), uint16(32))
	f.Add(uint64(3), uint8(31), uint16(100))
	f.Fuzz(func(t *testing.T, seed uint64, nRaw uint8, mRaw uint16) {
		n := int(nRaw % 40)
		m := 32 + int(mRaw%400)
		rng := rand.New(rand.NewPCG(seed, 19))
		d := randDist(n, rng)
		want := naiveFW(n, d)

		mc := max(m, 2*n)
		hc := machine.TwoLevel(int64(mc))
		got, err := FWClassical(hc, mc, n, d)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("classical: mismatch at %d", i)
			}
		}
		lc, sc := PredictFWClassical(n, mc)
		c := hc.Interface(0)
		if c.LoadWords != lc || c.StoreWords != sc || !hc.ResidencyBalanced(0) {
			t.Fatalf("classical: traffic (%d,%d) want (%d,%d)", c.LoadWords, c.StoreWords, lc, sc)
		}

		hw := machine.TwoLevel(int64(m))
		got, err = FWWriteEfficient(hw, m, n, d)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("write-efficient: mismatch at %d", i)
			}
		}
		lw, sw := PredictFWWriteEfficient(n, m)
		cw := hw.Interface(0)
		if cw.LoadWords != lw || cw.StoreWords != sw || !hw.ResidencyBalanced(0) {
			t.Fatalf("write-efficient: traffic (%d,%d) want (%d,%d)", cw.LoadWords, cw.StoreWords, lw, sw)
		}
	})
}
