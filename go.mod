module writeavoid

go 1.22
