package main

import (
	"encoding/json"
	"testing"

	"writeavoid/internal/costmodel"
	"writeavoid/internal/experiments"
)

// The -json document round-trips: this test consumes the serialized bytes
// through independent struct tags, the way an external tool would, and
// checks the counters inside.
func TestJSONReportCounters(t *testing.T) {
	raw, err := json.Marshal(buildJSONReport(experiments.NewSession(), true, "nvm", costmodel.NVMBacked(8)))
	if err != nil {
		t.Fatal(err)
	}

	var doc struct {
		HW     string `json:"hw"`
		Phases []struct {
			Name             string  `json:"name"`
			PredictedSeconds float64 `json:"predictedSeconds"`
			Machine          struct {
				Flops  int64 `json:"flops"`
				Levels []struct {
					Name     string `json:"name"`
					WritesTo int64  `json:"writesTo"`
				} `json:"levels"`
				Interfaces []struct {
					LoadWords     int64 `json:"loadWords"`
					StoreWords    int64 `json:"storeWords"`
					Traffic       int64 `json:"traffic"`
					Theorem1Holds bool  `json:"theorem1Holds"`
				} `json:"interfaces"`
			} `json:"machine"`
		} `json:"phases"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.HW != "nvm" {
		t.Fatalf("hw = %q", doc.HW)
	}

	byName := map[string]int{}
	for i, p := range doc.Phases {
		byName[p.Name] = i
		if len(p.Machine.Interfaces) == 0 {
			t.Fatalf("phase %q has no interfaces", p.Name)
		}
		if p.PredictedSeconds <= 0 {
			t.Fatalf("phase %q predicted %g seconds", p.Name, p.PredictedSeconds)
		}
		if !p.Machine.Interfaces[0].Theorem1Holds {
			t.Fatalf("phase %q violates Theorem 1", p.Name)
		}
		if tr := p.Machine.Interfaces[0].Traffic; tr !=
			p.Machine.Interfaces[0].LoadWords+p.Machine.Interfaces[0].StoreWords {
			t.Fatalf("phase %q traffic %d inconsistent", p.Name, tr)
		}
	}

	wa := doc.Phases[byName["matmul-wa"]]
	nw := doc.Phases[byName["matmul-nonwa"]]
	if want := int64(2 * 64 * 64 * 64); wa.Machine.Flops != want {
		t.Fatalf("matmul-wa flops %d want %d", wa.Machine.Flops, want)
	}
	// The write-avoiding order stores less to slow memory than the
	// contraction-outermost order on the same problem.
	if wa.Machine.Interfaces[0].StoreWords >= nw.Machine.Interfaces[0].StoreWords {
		t.Fatalf("WA stores %d not below non-WA stores %d",
			wa.Machine.Interfaces[0].StoreWords, nw.Machine.Interfaces[0].StoreWords)
	}
	// The streaming cost recorder saw the same events, so the cheaper-write
	// schedule is also predicted faster under write-asymmetric hardware.
	if wa.PredictedSeconds >= nw.PredictedSeconds {
		t.Fatalf("WA predicted %g not below non-WA %g", wa.PredictedSeconds, nw.PredictedSeconds)
	}
}
