// Command wabench regenerates every table and figure of the evaluation of
// "Write-Avoiding Algorithms" (Carson et al., 2015) on the simulated
// substrates of this repository.
//
// Usage:
//
//	wabench [-quick] [-json] [-stream file] [-trace file] [-profile] [section ...]
//
// Sections: sec2 sec3 sec4 sec5 fig2 fig5 realcache table1 table2 lu krylov sec9 smp multilevel all
// (default: all). -quick shrinks problem sizes so the whole run finishes in
// well under a minute; the full run takes a few minutes, dominated by the
// Figure 2/5 cache simulations. -json skips the text sections and instead
// emits machine-readable counter snapshots of a fixed counted phase suite.
//
// -stream writes live metrics as JSON lines ("-" = stdout) while the run
// executes: every -stream-every events, and at each section boundary, one
// record carrying the delta and cumulative machine snapshots. The summed
// deltas equal the final cumulative record exactly; tail the file to watch a
// long run's write/read trajectories mid-flight.
//
// -trace writes a Chrome trace-event JSON profile of the whole run: one
// duration event per algorithm phase span (panels, supersteps, solver
// phases), per-interface word-count counter tracks, and one pid/tid pair per
// processor of the distributed sections. Open the file in Perfetto
// (ui.perfetto.dev) or chrome://tracing, or validate it with `watrace
// checktrace`. -profile prints the same attribution as an ASCII span-tree
// table on stdout after the sections finish.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"writeavoid/internal/costmodel"
	"writeavoid/internal/experiments"
	"writeavoid/internal/machine"
	"writeavoid/internal/profile"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced problem sizes")
	hwKind := flag.String("hw", "nvm", "hardware preset for analytic tables: dram|nvm")
	jsonOut := flag.Bool("json", false, "emit per-phase recorder snapshots as JSON")
	streamTo := flag.String("stream", "", "stream live metrics as JSON lines to this file (- = stdout)")
	streamEvery := flag.Int64("stream-every", 100000, "events between periodic stream records (<=0: only phase marks)")
	traceTo := flag.String("trace", "", "write a Chrome trace-event JSON profile of the run to this file")
	profileOut := flag.Bool("profile", false, "print a per-phase attribution summary after the run")
	flag.Parse()

	sections := flag.Args()
	if len(sections) == 0 {
		sections = []string{"all"}
	}
	want := map[string]bool{}
	for _, s := range sections {
		want[s] = true
	}
	on := func(name string) bool { return want["all"] || want[name] }

	var hw costmodel.HW
	switch *hwKind {
	case "dram":
		hw = costmodel.DRAMOnly()
	case "nvm":
		hw = costmodel.NVMBacked(8)
	default:
		fmt.Fprintf(os.Stderr, "unknown -hw %q (want dram|nvm)\n", *hwKind)
		os.Exit(2)
	}

	var stream *machine.StreamRecorder
	if *streamTo != "" {
		var w io.Writer = os.Stdout
		if *streamTo != "-" {
			f, err := os.Create(*streamTo)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		stream = machine.NewStreamRecorder(w, machine.GenericLevels(3), *streamEvery)
		experiments.SetStream(stream)
		defer func() {
			experiments.SetStream(nil)
			if err := stream.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	if *traceTo != "" || *profileOut {
		prof := profile.NewProfiler(machine.GenericLevels(3))
		experiments.SetProfile(prof)
		defer func() {
			experiments.SetProfile(nil)
			if *profileOut {
				fmt.Print(prof.Summary())
			}
			if *traceTo != "" {
				f, err := os.Create(*traceTo)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				werr := prof.WriteTrace(f)
				cerr := f.Close()
				if werr != nil || cerr != nil {
					fmt.Fprintln(os.Stderr, "writing trace:", werr, cerr)
					os.Exit(1)
				}
			}
		}()
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(buildJSONReport(*quick, *hwKind, hw, stream)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	run := func(name string, f func() string) {
		if !on(name) {
			return
		}
		start := time.Now()
		out := f()
		fmt.Print(out)
		fmt.Printf("[%s done in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	run("sec2", experiments.Sec2Report)
	run("sec3", func() string { return experiments.FormatSec3(experiments.Sec3(*quick)) })
	run("sec4", func() string { return experiments.FormatSec4(experiments.Sec4(*quick)) })
	run("sec5", func() string { return experiments.FormatSec5(experiments.Sec5(*quick)) })
	run("fig2", func() string { return experiments.FormatPanels(experiments.Fig2(*quick)) })
	run("fig5", func() string { return experiments.FormatPanels(experiments.Fig5(*quick)) })
	run("realcache", func() string {
		wa, co := experiments.RealCacheCrossCheck()
		return fmt.Sprintf("== Set-associative CLOCK3 cross-check (250 x 128 x 250, 16-way)\n"+
			"WA order victims.M = %d, CO order victims.M = %d (ordering preserved: %v)\n",
			wa, co, wa < co)
	})
	run("table1", func() string {
		return experiments.FormatTable1(experiments.Table1(*quick), hw, 1<<14, 1<<10, 2, 8)
	})
	run("table2", func() string {
		return experiments.FormatTable2(experiments.Table2(*quick), hw, 1<<20, 256, 4)
	})
	run("lu", func() string { return experiments.FormatLU(experiments.LU(*quick), hw) })
	run("krylov", func() string { return experiments.FormatKrylov(experiments.Krylov(*quick)) })
	run("sec9", func() string { return experiments.Sec9Report(*quick) })
	run("smp", func() string { return experiments.SMPReport(*quick) })
	run("multilevel", func() string { return experiments.FormatMultiLevel(experiments.MultiLevel(*quick)) })
}
