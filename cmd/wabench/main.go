// Command wabench regenerates every table and figure of the evaluation of
// "Write-Avoiding Algorithms" (Carson et al., 2015) on the simulated
// substrates of this repository.
//
// Usage:
//
//	wabench [-quick] [-json] [-stream file] [-trace file] [-profile]
//	        [-serve addr] [-check off|warn|strict] [-benchjson file]
//	        [-flight N] [-flight-dump DIR]
//	        [-compare OLD.json NEW.json] [-pprof]
//	        [-log text|json] [-log-level debug|info|warn|error]
//	        [-sockets S] [-placement block|rr] [section ...]
//	wabench dashboards -out DIR [-check]
//
// Sections: sec2 sec3 sec4 sec5 fig2 fig5 realcache table1 table2 lu krylov sec9 smp multilevel omega numa all
// (default: all). -quick shrinks problem sizes so the whole run finishes in
// well under a minute; the full run takes a few minutes, dominated by the
// Figure 2/5 cache simulations. -json skips the text sections and instead
// emits machine-readable counter snapshots of a fixed counted phase suite.
//
// The omega section prices the write-efficient algorithm family (extsort's
// small-write sort, dp's LCS and Floyd–Warshall schedules) against the
// classical variants under the explicit write-cost parameter ω, asserting
// every load/store count exactly through the conformance monitor.
//
// -sockets partitions the distributed NUMA section's processors over S
// sockets and -placement picks the rank-to-socket mapping (block: contiguous
// rank ranges; rr: round-robin). The numa section compares both placements on
// the 2.5DMML3 multiply — identical word totals, different local/remote
// splits, different asymmetric-link prices — and asserts the W2 network floor
// per socket as well as globally. It runs under "all" only when -sockets >= 2
// (so default runs are byte-identical to the flat machine); naming it
// explicitly runs it with at least two sockets.
//
// -stream writes live metrics as JSON lines ("-" = stdout) while the run
// executes: every -stream-every events, and at each section boundary, one
// record carrying the delta and cumulative machine snapshots. The summed
// deltas equal the final cumulative record exactly; tail the file to watch a
// long run's write/read trajectories mid-flight.
//
// -trace writes a Chrome trace-event JSON profile of the whole run ("-" =
// stdout): one duration event per algorithm phase span (panels, supersteps,
// solver phases), per-interface word-count counter tracks, and one pid/tid
// pair per processor of the distributed sections. Open the file in Perfetto
// (ui.perfetto.dev) or chrome://tracing, or validate it with `watrace
// checktrace`. -profile prints the same attribution as an ASCII span-tree
// table on stdout after the sections finish. At most one output may claim
// stdout: -json, -stream -, -trace - and -benchjson - are mutually exclusive.
//
// -check evaluates the paper's bounds online while the run executes: a
// conformance monitor observes every counted hierarchy and, at each section
// boundary, asserts the registered predictions (Theorem 1, the Θ(output)
// write floor and ceiling, the n³/√M traffic bound, Theorem 2's store
// fraction, the Proposition 6.1 write-back counts, the distributed W1/W2
// floors) against that section's exact counter delta. "warn" reports
// violations on stderr; "strict" additionally exits nonzero when any bound
// failed — the CI gate.
//
// -flight N attaches the always-on flight recorder: a fixed ring keeping the
// last N events of every observed hierarchy plus the open span stack and the
// running phase delta, at constant overhead per batch. When the conformance
// monitor records a violation, the ring freezes into a forensic bundle —
// violation metadata, the decoded event window, the exact phase delta the
// check evaluated, and (for distributed sections) every rank's ring
// correlated by superstep. Bundles are served at /violations/{id}/dump and
// listed at /flight when -serve is on; -flight-dump DIR additionally writes
// each bundle as DIR/violation-<id>.json plus a .trace.json Perfetto export,
// which is how the CI strict gates preserve forensics on failure. With
// -benchjson, -flight N times the suite with the recorder attached, so the
// compare gate prices its steady-state cost.
//
// -serve starts a live observability HTTP server on addr (":0" picks a
// port, printed to stderr) for the duration of the run:
//
//	/metrics     Prometheus text exposition of the cumulative counters
//	/snapshot    machine snapshot + per-rank and cache views as JSON
//	/spans       span-tree attribution JSON (with -trace/-profile)
//	/events      live metrics records + phase marks as Server-Sent Events
//	/violations  the conformance monitor's violation list as JSON
//	/healthz     liveness
//
// -benchjson is a standalone mode: instead of the sections it times the
// benchmark workload suite (the same workloads as `go test -bench`) and
// writes ns/op plus counted events/op per workload as JSON to the given
// file ("-" = stdout), for CI artifact upload.
//
// -compare is a standalone mode diffing two -benchjson reports:
//
//	wabench -compare OLD.json NEW.json
//
// It prints a per-workload table and exits 1 when any workload regressed:
// ns/op above -compare-ns-ratio (default 1.30) times the old value, or
// events/op moved by more than -compare-events-eps relative (default 1e-9 —
// the counted event stream is deterministic, so any drift means the engine
// changed behavior, not speed). Workloads missing from NEW fail the gate;
// workloads only in NEW are reported but never fail it. This is the CI
// throughput gate against the committed pre-refactor baseline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"time"

	"path/filepath"

	"writeavoid/internal/costmodel"
	"writeavoid/internal/experiments"
	"writeavoid/internal/flight"
	"writeavoid/internal/machine"
	"writeavoid/internal/monitor"
	"writeavoid/internal/profile"
)

func main() { os.Exit(run(os.Args[1:])) }

// run is main with an exit code: deferred cleanups (stream flushes, trace
// writing, server shutdown) must run before the process exits, so nothing
// below calls os.Exit directly on the happy paths.
func run(args []string) (rc int) {
	// Subcommands dispatch before flag parsing claims their arguments.
	if len(args) > 0 && args[0] == "dashboards" {
		return runDashboards(args[1:])
	}
	fs := flag.NewFlagSet("wabench", flag.ExitOnError)
	quick := fs.Bool("quick", false, "run reduced problem sizes")
	hwKind := fs.String("hw", "nvm", "hardware preset for analytic tables: dram|nvm")
	jsonOut := fs.Bool("json", false, "emit per-phase recorder snapshots as JSON")
	streamTo := fs.String("stream", "", "stream live metrics as JSON lines to this file (- = stdout)")
	streamEvery := fs.Int64("stream-every", 100000, "events between periodic stream records (<=0: only phase marks)")
	traceTo := fs.String("trace", "", "write a Chrome trace-event JSON profile of the run to this file (- = stdout)")
	profileOut := fs.Bool("profile", false, "print a per-phase attribution summary after the run")
	serveAddr := fs.String("serve", "", "serve live observability HTTP on this address (e.g. :8080, :0 = ephemeral)")
	checkMode := fs.String("check", "off", "theory-conformance checking: off | warn | strict (strict exits nonzero on violation)")
	benchJSON := fs.String("benchjson", "", "standalone mode: run the benchmark suite, write ns/op + events/op JSON here (- = stdout)")
	compare := fs.Bool("compare", false, "standalone mode: diff two -benchjson reports (args: OLD.json NEW.json); exits 1 on regression")
	compareNsRatio := fs.Float64("compare-ns-ratio", 1.30, "with -compare: fail a workload whose ns/op exceeds this multiple of the old value")
	compareEvEps := fs.Float64("compare-events-eps", 1e-9, "with -compare: fail a workload whose events/op drifts by more than this relative epsilon")
	sockets := fs.Int("sockets", 1, "sockets for the numa section (>=2 also enables it under \"all\")")
	placementFlag := fs.String("placement", "block", "rank-to-socket placement for the numa section: block | rr")
	logFormat := fs.String("log", "text", "diagnostic log format: text | json")
	logLevel := fs.String("log-level", "info", "diagnostic log level: debug | info | warn | error")
	pprofOn := fs.Bool("pprof", false, "with -serve: expose /debug/pprof profiling endpoints")
	serviceAddr := fs.String("service", "", "standalone mode: serve the multi-tenant benchmark API (POST /runs, result cache, load shedding) on this address")
	serviceWorkers := fs.Int("service-workers", 4, "with -service: worker-pool size")
	serviceQueue := fs.Int("service-queue", 64, "with -service: bounded job-queue capacity (full queue sheds with 429)")
	flightEvents := fs.Int("flight", 0, "attach an always-on flight recorder keeping the last N events per hierarchy (0 = off)")
	flightDump := fs.String("flight-dump", "", "with -flight: write violation forensic bundles (JSON + Perfetto trace) into this directory")
	fs.Parse(args) //nolint:errcheck

	logger, err := newLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wabench: %v\n", err)
		return 2
	}
	// One Session owns this run's observability wiring end to end; nothing
	// is process-global, so an embedding caller (or the benchmark service)
	// can run many sessions concurrently.
	sess := experiments.NewSession()
	sess.SetLogger(logger)

	placement, err := machine.ParsePlacement(*placementFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wabench: %v\n", err)
		return 2
	}

	switch *checkMode {
	case "off", "warn", "strict":
	default:
		fmt.Fprintf(os.Stderr, "wabench: unknown -check %q (want off|warn|strict)\n", *checkMode)
		return 2
	}
	if *pprofOn && *serveAddr == "" {
		fmt.Fprintln(os.Stderr, "wabench: -pprof requires -serve")
		return 2
	}
	if *flightDump != "" && *flightEvents <= 0 {
		fmt.Fprintln(os.Stderr, "wabench: -flight-dump requires -flight N")
		return 2
	}
	// Exactly one writer may own stdout; catching the contradiction here
	// beats interleaving three JSON dialects into one stream.
	stdoutClaims := []string{}
	if *jsonOut {
		stdoutClaims = append(stdoutClaims, "-json")
	}
	if *streamTo == "-" {
		stdoutClaims = append(stdoutClaims, "-stream -")
	}
	if *traceTo == "-" {
		stdoutClaims = append(stdoutClaims, "-trace -")
	}
	if *benchJSON == "-" {
		stdoutClaims = append(stdoutClaims, "-benchjson -")
	}
	if len(stdoutClaims) > 1 {
		fmt.Fprintf(os.Stderr, "wabench: %v all write to stdout; pick one (or give the others file names)\n", stdoutClaims)
		return 2
	}
	if *benchJSON != "" && (*jsonOut || fs.NArg() > 0) {
		fmt.Fprintln(os.Stderr, "wabench: -benchjson is a standalone mode; it cannot combine with -json or section arguments")
		return 2
	}
	if *compare {
		if *benchJSON != "" || *jsonOut {
			fmt.Fprintln(os.Stderr, "wabench: -compare is a standalone mode; it cannot combine with -benchjson or -json")
			return 2
		}
		if fs.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "wabench: -compare needs exactly two arguments: OLD.json NEW.json")
			return 2
		}
		return runCompare(fs.Arg(0), fs.Arg(1), *compareNsRatio, *compareEvEps)
	}

	if *serviceAddr != "" {
		if *jsonOut || *benchJSON != "" || *serveAddr != "" || fs.NArg() > 0 {
			fmt.Fprintln(os.Stderr, "wabench: -service is a standalone mode; it cannot combine with -json, -benchjson, -serve, or section arguments")
			return 2
		}
		return runService(*serviceAddr, *serviceWorkers, *serviceQueue, logger)
	}

	var hw costmodel.HW
	switch *hwKind {
	case "dram":
		hw = costmodel.DRAMOnly()
	case "nvm":
		hw = costmodel.NVMBacked(8)
	default:
		fmt.Fprintf(os.Stderr, "unknown -hw %q (want dram|nvm)\n", *hwKind)
		return 2
	}

	if *benchJSON != "" {
		return runBenchJSON(*benchJSON, *quick, *flightEvents)
	}

	sections := fs.Args()
	if len(sections) == 0 {
		sections = []string{"all"}
	}
	want := map[string]bool{}
	for _, s := range sections {
		want[s] = true
	}
	on := func(name string) bool { return want["all"] || want[name] }

	if *streamTo != "" {
		var w io.Writer = os.Stdout
		if *streamTo != "-" {
			f, err := os.Create(*streamTo)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			defer f.Close()
			w = f
		}
		stream := machine.NewStreamRecorder(w, machine.GenericLevels(3), *streamEvery)
		sess.SetStream(stream)
		defer func() {
			if err := stream.Close(); err != nil {
				logger.Error("closing metrics stream", "err", err)
				if rc == 0 {
					rc = 1
				}
			}
		}()
	}

	if *traceTo != "" || *profileOut {
		prof := profile.NewProfiler(machine.GenericLevels(3))
		sess.SetProfile(prof)
		defer func() {
			if *profileOut {
				fmt.Print(prof.Summary())
			}
			if *traceTo == "" {
				return
			}
			w := io.Writer(os.Stdout)
			var f *os.File
			if *traceTo != "-" {
				var err error
				if f, err = os.Create(*traceTo); err != nil {
					fmt.Fprintln(os.Stderr, err)
					if rc == 0 {
						rc = 1
					}
					return
				}
				w = f
			}
			werr := prof.WriteTrace(w)
			var cerr error
			if f != nil {
				cerr = f.Close()
			}
			if werr != nil || cerr != nil {
				logger.Error("writing trace", "writeErr", werr, "closeErr", cerr)
				if rc == 0 {
					rc = 1
				}
			}
		}()
	}

	// The conformance monitor observes whenever checking or serving is on:
	// the server's /violations and /snapshot endpoints are backed by it even
	// when the check verdict is not enforced.
	var mon *monitor.Monitor
	if *checkMode != "off" || *serveAddr != "" {
		reg := experiments.ConformanceChecks(*quick)
		if *jsonOut {
			reg = jsonSuiteChecks()
		}
		mon = monitor.New(machine.GenericLevels(3), reg)
		sess.SetMonitor(mon)
	}

	var srv *monitor.Server
	if *serveAddr != "" {
		srv = monitor.NewServer()
		srv.SetLogger(logger.With("component", "http"))
		if *pprofOn {
			srv.EnablePprof()
		}
		if mon != nil {
			srv.SetMonitor(mon)
		}
		// The distribution recorder turns exact per-phase deltas into the
		// wa_phase_* histograms next to the monitor's scalar counters.
		hists := monitor.NewHistogramRecorder(machine.GenericLevels(3))
		if *jsonOut {
			// The -json phase suite's store floors (same numbers the
			// conformance registry asserts) feed the floor-slack histogram.
			hists.SetFloor("matmul-wa", 64*64)
			hists.SetFloor("matmul-nonwa", 64*64)
			hists.SetFloor("extsort", 1<<12)
		}
		sess.SetHistograms(hists)
		srv.SetHistograms(hists)
		// A second stream recorder feeds the SSE bridge, so /events carries
		// the same JSONL records a -stream file would, phase marks included.
		sse := machine.NewStreamRecorder(srv.Events(), machine.GenericLevels(3), *streamEvery)
		sess.AddStream(sse)
		sess.SetServer(srv)
		addr, err := srv.Start(*serveAddr)
		if err != nil {
			logger.Error("starting observability server", "err", err)
			return 1
		}
		logger.Info("serving observability", "url", fmt.Sprintf("http://%s/", addr),
			"pprof", *pprofOn)
		defer func() {
			hists.Finish()  // close the last phase before the final scrapes
			_ = sse.Close() // final record reaches /events subscribers
			_ = srv.Close()
		}()
	}

	// The flight recorder is the run's black box: always on once enabled, it
	// rides every observed hierarchy; a conformance violation freezes the
	// ring into a forensic bundle, published on the server and — with
	// -flight-dump — written to disk as JSON plus a Perfetto trace.
	if *flightEvents > 0 {
		fr := flight.New(*flightEvents, machine.GenericLevels(3))
		sess.SetFlight(fr)
		if srv != nil {
			srv.SetFlight(fr)
		}
		if mon != nil {
			dumpDir := *flightDump
			mon.SetViolationHook(func(v monitor.Violation) {
				b := sess.FlightCapture(v)
				if b == nil {
					return
				}
				if srv != nil {
					srv.AddBundle(b)
				}
				if dumpDir != "" {
					dumpBundle(dumpDir, b, logger)
				}
			})
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(buildJSONReport(sess, *quick, *hwKind, hw)); err != nil {
			logger.Error("encoding JSON report", "err", err)
			return 1
		}
		return conformanceVerdict(mon, *checkMode, logger)
	}

	runSec := func(name string, f func() string) {
		if !on(name) {
			return
		}
		start := time.Now()
		out := f()
		fmt.Print(out)
		fmt.Printf("[%s done in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	runSec("sec2", sess.Sec2Report)
	runSec("sec3", func() string { return experiments.FormatSec3(sess.Sec3(*quick)) })
	runSec("sec4", func() string { return experiments.FormatSec4(sess.Sec4(*quick)) })
	runSec("sec5", func() string { return experiments.FormatSec5(sess.Sec5(*quick)) })
	runSec("fig2", func() string { return experiments.FormatPanels(sess.Fig2(*quick)) })
	runSec("fig5", func() string { return experiments.FormatPanels(sess.Fig5(*quick)) })
	runSec("realcache", func() string {
		wa, co := sess.RealCacheCrossCheck()
		return fmt.Sprintf("== Set-associative CLOCK3 cross-check (250 x 128 x 250, 16-way)\n"+
			"WA order victims.M = %d, CO order victims.M = %d (ordering preserved: %v)\n",
			wa, co, wa < co)
	})
	runSec("table1", func() string {
		return experiments.FormatTable1(sess.Table1(*quick), hw, 1<<14, 1<<10, 2, 8)
	})
	runSec("table2", func() string {
		return experiments.FormatTable2(sess.Table2(*quick), hw, 1<<20, 256, 4)
	})
	runSec("lu", func() string { return experiments.FormatLU(sess.LU(*quick), hw) })
	runSec("krylov", func() string { return experiments.FormatKrylov(sess.Krylov(*quick)) })
	runSec("sec9", func() string { return sess.Sec9Report(*quick) })
	runSec("smp", func() string { return sess.SMPReport(*quick) })
	runSec("multilevel", func() string { return experiments.FormatMultiLevel(sess.MultiLevel(*quick)) })
	runSec("omega", func() string { return experiments.FormatOmega(sess.Omega(*quick)) })
	// Gated under "all" so a default run's output (and every counter behind
	// it) stays byte-identical to the pre-socket machine; explicit `numa`
	// always runs, clamped to at least two sockets inside the section.
	if want["numa"] || (want["all"] && *sockets >= 2) {
		runSec("numa", func() string { return experiments.FormatNUMA(sess.NUMA(*quick, *sockets, placement)) })
	}

	return conformanceVerdict(mon, *checkMode, logger)
}

// dumpBundle writes one forensic bundle into dir as violation-<id>.json plus
// violation-<id>.trace.json (the Perfetto export; bundle-<seq>.* when the
// bundle has no violation), creating dir on first use. Dump failures are
// logged, never fatal — the run's verdict must not hinge on forensic I/O.
func dumpBundle(dir string, b *flight.Bundle, logger *slog.Logger) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		logger.Error("flight dump", "dir", dir, "err", err)
		return
	}
	stem := fmt.Sprintf("bundle-%d", b.Seq)
	if b.Violation != nil {
		stem = fmt.Sprintf("violation-%d", b.Violation.ID)
	}
	write := func(name string, render func(io.Writer) error) {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			logger.Error("flight dump", "file", path, "err", err)
			return
		}
		werr := render(f)
		cerr := f.Close()
		if werr != nil || cerr != nil {
			logger.Error("flight dump", "file", path, "writeErr", werr, "closeErr", cerr)
			return
		}
		logger.Info("flight bundle dumped", "file", path)
	}
	write(stem+".json", b.WriteJSON)
	write(stem+".trace.json", b.WriteTrace)
}

// conformanceVerdict closes the monitor after the run and turns its
// violations into the process outcome: silent under "off", reported under
// "warn", reported and nonzero under "strict". It is the last sequential
// step of both output modes.
func conformanceVerdict(mon *monitor.Monitor, mode string, logger *slog.Logger) int {
	if mon == nil {
		return 0
	}
	viol := mon.Finish()
	if mode == "off" {
		return 0
	}
	if len(viol) == 0 {
		logger.Info("conformance ok", "phases", mon.Phases(), "violations", 0)
		return 0
	}
	for _, v := range viol {
		logger.Warn("conformance violation", "violation", v.String())
	}
	logger.Error("conformance failed", "violations", len(viol), "phases", mon.Phases())
	if mode == "strict" {
		return 1
	}
	return 0
}

// jsonSuiteChecks is the conformance registry for the -json counted phase
// suite (buildJSONReport): the same bounds the text sections assert, sized to
// the suite's fixed phases.
func jsonSuiteChecks() *monitor.Registry {
	reg := monitor.NewRegistry()
	reg.Register(monitor.Theorem1(1))
	// 64x64 matmul at M=768: output floor, WA store ceiling, Hong-Kung floor.
	reg.Register(monitor.OutputFloor("matmul-wa", 64*64))
	reg.Register(monitor.WACeiling("matmul-wa", 64*64, 1.25))
	reg.Register(monitor.CATraffic("matmul-wa", 64, 64, 64, 768, 1))
	reg.Register(monitor.OutputFloor("matmul-nonwa", 64*64))
	// n=1024 FFT: Theorem 2 with out-degree 2 and 2n input words.
	reg.Register(monitor.StoreFraction("fft-external", 2, 2*1024, 1))
	// 2^12-word external sort writes at least its output.
	reg.Register(monitor.OutputFloor("extsort", 1<<12))
	return reg
}
