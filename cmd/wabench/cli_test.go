package main

import (
	"io"
	"log/slog"
	"testing"

	"writeavoid/internal/costmodel"
	"writeavoid/internal/experiments"
	"writeavoid/internal/machine"
	"writeavoid/internal/monitor"
)

// Contradictory flag combinations are rejected up front with usage exit
// code 2 — never a run with interleaved stdout dialects.
func TestRunRejectsContradictoryFlags(t *testing.T) {
	cases := [][]string{
		{"-check", "bogus"},
		{"-stream", "-", "-trace", "-"},
		{"-json", "-stream", "-"},
		{"-json", "-trace", "-"},
		{"-benchjson", "-", "-stream", "-"},
		{"-benchjson", "out.json", "-json"},
		{"-benchjson", "out.json", "sec2"},
		{"-hw", "weird"},
	}
	for _, args := range cases {
		if rc := run(args); rc != 2 {
			t.Errorf("run(%v) = %d, want 2", args, rc)
		}
	}
}

func testLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// The strict verdict: a monitor that recorded a violation exits nonzero
// under -check strict, zero under warn and off.
func TestConformanceVerdictExitCodes(t *testing.T) {
	mk := func(floor int64) *monitor.Monitor {
		reg := monitor.NewRegistry()
		reg.Register(monitor.OutputFloor("p", floor))
		mon := monitor.New(machine.GenericLevels(2), reg)
		mon.Phase("p")
		mon.Record(machine.Event{Kind: machine.EvLoad, Arg: 0, Words: 100})
		mon.Record(machine.Event{Kind: machine.EvStore, Arg: 0, Words: 50})
		return mon
	}
	if rc := conformanceVerdict(mk(1<<40), "strict", testLogger()); rc != 1 {
		t.Fatalf("strict verdict on violation = %d, want 1", rc)
	}
	if rc := conformanceVerdict(mk(1<<40), "warn", testLogger()); rc != 0 {
		t.Fatalf("warn verdict on violation = %d, want 0", rc)
	}
	if rc := conformanceVerdict(mk(1<<40), "off", testLogger()); rc != 0 {
		t.Fatalf("off verdict on violation = %d, want 0", rc)
	}
	if rc := conformanceVerdict(mk(10), "strict", testLogger()); rc != 0 {
		t.Fatalf("strict verdict on clean run = %d, want 0", rc)
	}
	if rc := conformanceVerdict(nil, "strict", testLogger()); rc != 0 {
		t.Fatalf("strict verdict with no monitor = %d, want 0", rc)
	}
}

// The -json phase suite satisfies its own registered bounds: the strict
// gate over buildJSONReport stays green, and all four phases are checked.
func TestJSONSuiteConformsStrictly(t *testing.T) {
	mon := monitor.New(machine.GenericLevels(3), jsonSuiteChecks())
	sess := experiments.NewSession()
	sess.SetMonitor(mon)
	buildJSONReport(sess, true, "nvm", costmodel.NVMBacked(8))
	if rc := conformanceVerdict(mon, "strict", testLogger()); rc != 0 {
		t.Fatalf("json suite violates its own bounds: %v", mon.Violations())
	}
	if mon.Phases() != 4 {
		t.Fatalf("phases checked = %d, want 4", mon.Phases())
	}
	if mon.TotalEvents() == 0 {
		t.Fatal("monitor saw no events")
	}
}
