package main

import (
	"fmt"
	"io"
	"log/slog"
)

// Structured diagnostics: everything wabench reports about a run in flight
// (stream failures, the serve URL, conformance verdicts) goes through one
// slog.Logger, selectable as human text or machine JSON with a level knob —
// so a CI harness can parse `-log json` stderr instead of grepping prose.
// Usage errors before a run starts stay plain fmt output: they are CLI UX,
// not run telemetry.

// newLogger builds the run logger writing to w.
func newLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	var lv slog.Level
	switch level {
	case "debug":
		lv = slog.LevelDebug
	case "info":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("unknown -log %q (want text|json)", format)
	}
}
