package main

import (
	"log/slog"
	"os"
	"os/signal"
	"syscall"

	"writeavoid/internal/monitor"
	"writeavoid/internal/service"
)

// runService is the `-service ADDR` standalone mode: the observability
// server with the multi-tenant benchmark API mounted on it — POST /runs,
// per-run status/result/SSE, and the wa_service_* families on /metrics —
// serving until SIGINT/SIGTERM, then draining the queue before exit.
func runService(addr string, workers, queueCap int, logger *slog.Logger) int {
	svc := service.New(workers, queueCap)
	srv := monitor.NewServer()
	srv.SetLogger(logger)
	svc.Mount(srv)
	bound, err := srv.Start(addr)
	if err != nil {
		logger.Error("starting service", "err", err)
		return 1
	}
	logger.Info("benchmark service listening",
		"addr", bound.String(), "workers", workers, "queue", queueCap,
		"sections", service.Sections())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	logger.Info("benchmark service draining")
	svc.Close() // workers finish every queued run; brokers shut down
	if err := srv.Close(); err != nil {
		logger.Error("closing server", "err", err)
		return 1
	}
	return 0
}
