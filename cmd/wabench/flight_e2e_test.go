package main

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"writeavoid/internal/experiments"
	"writeavoid/internal/flight"
	"writeavoid/internal/machine"
	"writeavoid/internal/monitor"
	"writeavoid/internal/profile"
)

// The forensic path exactly as run() wires it: flight recorder + monitor +
// server + dump directory, a real dist-backed section, then a tripped bound.
// The resulting bundle must surface on every channel — the violation hook,
// the server's dump endpoint, the SSE broadcast, and the on-disk JSON +
// Perfetto files — with per-rank windows correlated by superstep.
func TestFlightForensicPathEndToEnd(t *testing.T) {
	mon := monitor.New(machine.GenericLevels(3), nil)
	fr := flight.New(4096, machine.GenericLevels(3))
	sess := experiments.NewSession()
	sess.SetMonitor(mon)
	sess.SetFlight(fr)

	srv := monitor.NewServer()
	srv.SetMonitor(mon)
	srv.SetFlight(fr)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	dir := t.TempDir()
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	var hooked *flight.Bundle
	mon.SetViolationHook(func(v monitor.Violation) {
		b := sess.FlightCapture(v)
		if b == nil {
			t.Error("FlightCapture returned nil with a recorder installed")
			return
		}
		hooked = b
		srv.AddBundle(b)
		dumpBundle(dir, b, quiet)
	})

	// A serial section feeds the main ring through the observe hook; a
	// distributed one registers per-rank flight recorders through
	// distObserve.
	sess.Sec4(true)
	if st := fr.Stats(); st.TotalEvents == 0 {
		t.Fatal("flight recorder saw no events from the serial section")
	}
	sess.Table1(true)

	// Trip a deliberately impossible bound: the hook must fire.
	mon.CheckBound("e2e-floor", "table1", 1, 1<<40, 1, false)
	if hooked == nil {
		t.Fatal("violation hook never fired")
	}
	if hooked.Violation == nil || hooked.Violation.ID != 1 || hooked.Violation.Check != "e2e-floor" {
		t.Fatalf("bundle violation metadata: %+v", hooked.Violation)
	}
	if len(hooked.Ranks) == 0 {
		t.Fatal("dist-backed run produced no rank windows")
	}
	for _, rw := range hooked.Ranks {
		if !strings.HasPrefix(rw.Run, "table1 ") {
			t.Fatalf("rank window from unexpected run %q", rw.Run)
		}
		if !strings.HasPrefix(rw.Superstep, "step ") {
			t.Fatalf("rank %d of %q has no superstep correlation: %q", rw.Rank, rw.Run, rw.Superstep)
		}
	}
	// Every rank of one run froze in the same barrier generation.
	bySuper := map[string]string{}
	for _, rw := range hooked.Ranks {
		if prev, ok := bySuper[rw.Run]; ok && prev != rw.Superstep {
			t.Fatalf("run %q ranks disagree on superstep: %q vs %q", rw.Run, prev, rw.Superstep)
		}
		bySuper[rw.Run] = rw.Superstep
	}

	// The server serves the same bundle keyed by violation ID.
	resp, err := http.Get(ts.URL + "/violations/1/dump")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/violations/1/dump = %d", resp.StatusCode)
	}
	var served flight.Bundle
	if err := json.NewDecoder(resp.Body).Decode(&served); err != nil {
		t.Fatal(err)
	}
	if served.Seq != hooked.Seq || len(served.Ranks) != len(hooked.Ranks) {
		t.Fatalf("served bundle (seq %d, %d ranks) != hooked (seq %d, %d ranks)",
			served.Seq, len(served.Ranks), hooked.Seq, len(hooked.Ranks))
	}

	// The dump directory holds the JSON bundle and a valid Perfetto trace.
	raw, err := os.ReadFile(filepath.Join(dir, "violation-1.json"))
	if err != nil {
		t.Fatal(err)
	}
	var dumped flight.Bundle
	if err := json.Unmarshal(raw, &dumped); err != nil {
		t.Fatalf("dump file is not a bundle: %v", err)
	}
	var again bytes.Buffer
	if err := dumped.WriteJSON(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, again.Bytes()) {
		t.Fatal("dumped bundle JSON does not round-trip bit for bit")
	}
	trace, err := os.ReadFile(filepath.Join(dir, "violation-1.trace.json"))
	if err != nil {
		t.Fatal(err)
	}
	info, err := profile.ValidateTraceEvent(trace)
	if err != nil {
		t.Fatalf("dumped trace does not validate: %v", err)
	}
	if info.Spans == 0 || len(info.Pids) < 2 {
		t.Fatalf("dumped trace too thin: %d spans, pids %v", info.Spans, info.Pids)
	}
}

// -flight N rides the full CLI run path and stays invisible to the verdict;
// -flight-dump without -flight is a usage error.
func TestFlightFlagWiring(t *testing.T) {
	if rc := run([]string{"-quick", "-flight", "512", "-check", "strict", "sec4"}); rc != 0 {
		t.Fatalf("conforming run with -flight exited %d", rc)
	}
	if rc := run([]string{"-flight-dump", t.TempDir(), "-quick", "sec4"}); rc != 2 {
		t.Fatalf("-flight-dump without -flight exited %d, want 2", rc)
	}
}
