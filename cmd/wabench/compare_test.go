package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func writeReport(t *testing.T, dir, name string, rep BenchReport) string {
	t.Helper()
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func benchRep(results ...BenchResult) BenchReport {
	return BenchReport{Quick: true, Results: results}
}

func TestComparePassesWithinThreshold(t *testing.T) {
	dir := t.TempDir()
	old := writeReport(t, dir, "old.json", benchRep(
		BenchResult{Name: "A", Iters: 3, NsPerOp: 1000, EventsPerOp: 500},
		BenchResult{Name: "B", Iters: 3, NsPerOp: 2000, EventsPerOp: 0},
	))
	niu := writeReport(t, dir, "new.json", benchRep(
		BenchResult{Name: "A", Iters: 3, NsPerOp: 1200, EventsPerOp: 500}, // 1.2x < 1.30x
		BenchResult{Name: "B", Iters: 3, NsPerOp: 1000, EventsPerOp: 0},   // faster
		BenchResult{Name: "C", Iters: 3, NsPerOp: 9999, EventsPerOp: 1},   // new: not gated
	))
	if rc := run([]string{"-compare", old, niu}); rc != 0 {
		t.Fatalf("compare within threshold: rc = %d, want 0", rc)
	}
}

func TestCompareFailsOnSlowdown(t *testing.T) {
	dir := t.TempDir()
	old := writeReport(t, dir, "old.json", benchRep(
		BenchResult{Name: "A", Iters: 3, NsPerOp: 1000, EventsPerOp: 500},
	))
	niu := writeReport(t, dir, "new.json", benchRep(
		BenchResult{Name: "A", Iters: 3, NsPerOp: 1500, EventsPerOp: 500}, // 1.5x > 1.30x
	))
	if rc := run([]string{"-compare", old, niu}); rc != 1 {
		t.Fatalf("compare with slowdown: rc = %d, want 1", rc)
	}
	// A looser explicit threshold lets the same pair pass.
	if rc := run([]string{"-compare", "-compare-ns-ratio", "2.0", old, niu}); rc != 0 {
		t.Fatalf("compare with loose ratio: rc = %d, want 0", rc)
	}
}

func TestCompareFailsOnEventDrift(t *testing.T) {
	dir := t.TempDir()
	old := writeReport(t, dir, "old.json", benchRep(
		BenchResult{Name: "A", Iters: 3, NsPerOp: 1000, EventsPerOp: 500},
	))
	niu := writeReport(t, dir, "new.json", benchRep(
		BenchResult{Name: "A", Iters: 3, NsPerOp: 1000, EventsPerOp: 501},
	))
	if rc := run([]string{"-compare", old, niu}); rc != 1 {
		t.Fatalf("compare with event drift: rc = %d, want 1", rc)
	}
}

func TestCompareFailsOnMissingWorkload(t *testing.T) {
	dir := t.TempDir()
	old := writeReport(t, dir, "old.json", benchRep(
		BenchResult{Name: "A", Iters: 3, NsPerOp: 1000, EventsPerOp: 500},
		BenchResult{Name: "B", Iters: 3, NsPerOp: 1000, EventsPerOp: 500},
	))
	niu := writeReport(t, dir, "new.json", benchRep(
		BenchResult{Name: "A", Iters: 3, NsPerOp: 1000, EventsPerOp: 500},
	))
	if rc := run([]string{"-compare", old, niu}); rc != 1 {
		t.Fatalf("compare with missing workload: rc = %d, want 1", rc)
	}
}

func TestCompareUsageErrors(t *testing.T) {
	dir := t.TempDir()
	old := writeReport(t, dir, "old.json", benchRep(
		BenchResult{Name: "A", Iters: 3, NsPerOp: 1000, EventsPerOp: 500},
	))
	quickMismatch := writeReport(t, dir, "full.json", BenchReport{Quick: false, Results: []BenchResult{
		{Name: "A", Iters: 3, NsPerOp: 1000, EventsPerOp: 500},
	}})
	cases := [][]string{
		{"-compare"},                           // no args
		{"-compare", old},                      // one arg
		{"-compare", old, old, old},            // three args
		{"-compare", "-json", old, old},        // mode clash
		{"-compare", "-benchjson", "-", old},   // mode clash
		{"-compare", old, "/nonexistent.json"}, // unreadable
		{"-compare", old, quickMismatch},       // quick flags differ
	}
	for _, args := range cases {
		if rc := run(args); rc != 2 {
			t.Errorf("run(%v) = %d, want 2", args, rc)
		}
	}
}
