package main

// The -benchjson mode: a self-timing harness over the repository's benchmark
// workloads (the same bodies bench_test.go runs under `go test -bench`),
// producing a machine-readable JSON artifact without needing the test
// binary. Each workload reports wall time per op plus the machine events it
// drove per op, counted by a monitor attached both directly (raw-substrate
// kernels) and through the experiments hooks (section drivers) — so the
// artifact pairs "how fast" with "how much simulated memory activity".

import (
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"os"
	"time"

	"writeavoid/internal/cache"
	"writeavoid/internal/cdag"
	"writeavoid/internal/core"
	"writeavoid/internal/experiments"
	"writeavoid/internal/extsort"
	"writeavoid/internal/fft"
	"writeavoid/internal/flight"
	"writeavoid/internal/machine"
	"writeavoid/internal/matrix"
	"writeavoid/internal/monitor"
)

// BenchResult is one workload's line in the -benchjson document.
type BenchResult struct {
	Name        string  `json:"name"`
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"nsPerOp"`
	EventsPerOp float64 `json:"eventsPerOp"`
}

// BenchReport is the top-level -benchjson document.
type BenchReport struct {
	Quick   bool          `json:"quick"`
	Results []BenchResult `json:"results"`
}

// benchWorkload is one timed unit: run executes a single op, recording any
// hierarchy it builds into rec (section drivers reach the same recorder
// through the session's monitor hook instead). Every timed run gets a fresh
// Session, so no recorder state leaks between workloads or iterations.
type benchWorkload struct {
	name string
	run  func(sess *experiments.Session, rec machine.Recorder) error
}

// benchWorkloads mirrors ten benchmarks of bench_test.go — the five section
// drivers and five raw-substrate kernels — with the same shapes and sizes,
// so the JSON artifact tracks the same work `go test -bench` times.
func benchWorkloads() []benchWorkload {
	rng := rand.New(rand.NewPCG(1, 2))
	return []benchWorkload{
		{"Fig2", func(sess *experiments.Session, _ machine.Recorder) error {
			sess.Fig2(true)
			return nil
		}},
		{"Table1", func(sess *experiments.Session, _ machine.Recorder) error {
			sess.Table1(true)
			return nil
		}},
		{"Sec4Kernels", func(sess *experiments.Session, _ machine.Recorder) error {
			sess.Sec4(true)
			return nil
		}},
		{"Sec7LU", func(sess *experiments.Session, _ machine.Recorder) error {
			sess.LU(true)
			return nil
		}},
		{"Sec8Krylov", func(sess *experiments.Session, _ machine.Recorder) error {
			sess.Krylov(true)
			return nil
		}},
		{"WAMatMulCompute", func(_ *experiments.Session, rec machine.Recorder) error {
			n := 128
			a := matrix.Random(n, n, 1)
			b := matrix.Random(n, n, 2)
			p := core.TwoLevelPlan(3*16*16, 16, core.OrderWA)
			p.H.Attach(rec)
			return core.MatMul(p, matrix.New(n, n), a, b)
		}},
		{"CacheSimFALRU", func(_ *experiments.Session, _ machine.Recorder) error {
			c := cache.NewFALRU(128*1024, 64)
			for i := 0; i < 1<<16; i++ {
				c.Access(uint64(i*64)%(1<<22), i&7 == 0)
			}
			return nil
		}},
		{"FFTExternal", func(_ *experiments.Session, rec machine.Recorder) error {
			x := make([]complex128, 4096)
			for i := range x {
				x[i] = complex(float64(i%7), float64(i%3))
			}
			h := machine.TwoLevel(64)
			h.Attach(rec)
			fft.External(h, 64, x)
			return nil
		}},
		{"ExternalSort", func(_ *experiments.Session, rec machine.Recorder) error {
			data := make([]float64, 1<<14)
			for i := range data {
				data[i] = float64((i * 2654435761) % 99991)
			}
			h := machine.TwoLevel(256)
			h.Attach(rec)
			_, err := extsort.Sort(h, 256, data)
			return err
		}},
		{"ScheduleSimulation", func(_ *experiments.Session, _ machine.Recorder) error {
			g := fft.BuildCDAG(64)
			order := cdag.RandomTopoOrder(g, rng)
			_, err := cdag.Schedule(g, order, 16, rng)
			return err
		}},
	}
}

// runBenchJSON times every workload (one warmup op, then at least three ops
// and at least minDur of wall time) and writes the JSON report to path. With
// flightN > 0 a flight recorder of that capacity rides every workload — teed
// next to the monitor on raw kernels, attached through the experiments hooks
// on section drivers — so comparing a flight run against a no-flight
// baseline prices the recorder's steady-state overhead; events/op is counted
// by the monitor alone and stays identical either way.
func runBenchJSON(path string, quick bool, flightN int) int {
	minDur := time.Second
	if quick {
		minDur = 200 * time.Millisecond
	}
	const minIters, maxIters = 3, 1000

	var fr *flight.Recorder
	if flightN > 0 {
		fr = flight.New(flightN, machine.GenericLevels(3))
	}
	// attach tees the flight recorder next to the per-workload counter.
	attach := func(m machine.Recorder) machine.Recorder {
		if fr == nil {
			return m
		}
		return machine.Tee(m, fr)
	}
	// session builds the per-run wiring: a fresh Session per monitor, the
	// shared flight ring riding along when -flight is on.
	session := func(m *monitor.Monitor) *experiments.Session {
		sess := experiments.NewSession()
		sess.SetMonitor(m)
		if fr != nil {
			sess.SetFlight(fr)
		}
		return sess
	}

	rep := BenchReport{Quick: quick}
	for _, w := range benchWorkloads() {
		// The monitor doubles as the event counter: it is a Recorder, the
		// experiments hooks accept it, and TotalEvents is exactly the
		// counter-bearing event count.
		warm := monitor.New(machine.GenericLevels(3), nil)
		if err := w.run(session(warm), attach(warm)); err != nil {
			fmt.Fprintf(os.Stderr, "wabench: bench %s: %v\n", w.name, err)
			return 1
		}

		m := monitor.New(machine.GenericLevels(3), nil)
		sess := session(m)
		iters := 0
		start := time.Now()
		var elapsed time.Duration
		for iters < minIters || (elapsed < minDur && iters < maxIters) {
			if err := w.run(sess, attach(m)); err != nil {
				fmt.Fprintf(os.Stderr, "wabench: bench %s: %v\n", w.name, err)
				return 1
			}
			iters++
			elapsed = time.Since(start)
		}

		res := BenchResult{
			Name:        w.name,
			Iters:       iters,
			NsPerOp:     float64(elapsed.Nanoseconds()) / float64(iters),
			EventsPerOp: float64(m.TotalEvents()) / float64(iters),
		}
		rep.Results = append(rep.Results, res)
		fmt.Fprintf(os.Stderr, "wabench: bench %-20s %14.0f ns/op %14.1f events/op  (%d iters)\n",
			res.Name, res.NsPerOp, res.EventsPerOp, res.Iters)
	}

	w := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wabench:", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "wabench:", err)
		return 1
	}
	return 0
}
