package main

import (
	"writeavoid/internal/core"
	"writeavoid/internal/costmodel"
	"writeavoid/internal/experiments"
	"writeavoid/internal/extsort"
	"writeavoid/internal/fft"
	"writeavoid/internal/machine"
	"writeavoid/internal/matrix"
)

// PhaseReport is one counted phase of the -json output: the full machine
// snapshot plus the alpha-beta time a streaming costmodel.Recorder charged
// to the phase's exact event stream.
type PhaseReport struct {
	Name             string           `json:"name"`
	PredictedSeconds float64          `json:"predictedSeconds"`
	Machine          machine.Snapshot `json:"machine"`
}

// Report is the top-level -json document.
type Report struct {
	HW     string        `json:"hw"`
	Quick  bool          `json:"quick"`
	Phases []PhaseReport `json:"phases"`
}

// buildJSONReport runs a small suite of counted phases, each on a fresh
// hierarchy with a costmodel.Recorder attached, and snapshots the counters.
// Phase sizes are fixed (they already finish in milliseconds), so quick only
// tags the document. Each phase passes its hierarchy through the session's
// observability hooks, so any installed stream recorders, profiler, monitor
// and server see the suite the same way they see the text sections — phase
// boundaries become marks, and the JSONL deltas line up with the report's
// phases name for name.
func buildJSONReport(sess *experiments.Session, quick bool, hwName string, hw costmodel.HW) Report {
	rep := Report{HW: hwName, Quick: quick}

	phase := func(name string, h *machine.Hierarchy, run func()) {
		rec := costmodel.NewRecorder(hw)
		h.Attach(rec)
		sess.Mark(name)
		sess.Observe(h)
		run()
		rep.Phases = append(rep.Phases, PhaseReport{
			Name:             name,
			PredictedSeconds: rec.Time(),
			Machine:          h.Snapshot(),
		})
	}

	matmul := func(name string, order core.Order) {
		p := core.TwoLevelPlan(3*16*16, 16, order)
		phase(name, p.H, func() {
			c := matrix.New(64, 64)
			if err := core.MatMul(p, c, matrix.Random(64, 64, 1), matrix.Random(64, 64, 2)); err != nil {
				panic(err)
			}
		})
	}
	matmul("matmul-wa", core.OrderWA)
	matmul("matmul-nonwa", core.OrderNonWA)

	{
		h := machine.TwoLevel(64)
		phase("fft-external", h, func() {
			x := make([]complex128, 1024)
			for i := range x {
				x[i] = complex(float64(i%7)-3, float64(i%5)-2)
			}
			fft.External(h, 64, x)
		})
	}
	{
		h := machine.TwoLevel(256)
		phase("extsort", h, func() {
			data := make([]float64, 1<<12)
			for i := range data {
				data[i] = float64((i * 2654435761) % 99991)
			}
			if _, err := extsort.Sort(h, 256, data); err != nil {
				panic(err)
			}
		})
	}
	return rep
}
