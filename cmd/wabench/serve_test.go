package main

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"writeavoid/internal/costmodel"
	"writeavoid/internal/experiments"
	"writeavoid/internal/machine"
	"writeavoid/internal/monitor"
)

// sseClient subscribes to /events and hands back a line reader plus a
// cancel that models the browser tab closing.
func sseClient(t *testing.T, url string) (*bufio.Reader, context.CancelFunc) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	req, _ := http.NewRequestWithContext(ctx, "GET", url+"/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	r := bufio.NewReader(resp.Body)
	if line, err := r.ReadString('\n'); err != nil || !strings.HasPrefix(line, ":") {
		cancel()
		t.Fatalf("no opening comment: %q %v", line, err)
	}
	return r, cancel
}

// The wabench -serve wiring end to end, minus the TCP listener: the counted
// phase suite runs with the server installed, one SSE client watches the
// whole run (and must see a phase mark and at least one stream record per
// phase), while a second client disconnects mid-run without disturbing it.
func TestServeEventsStreamDuringRun(t *testing.T) {
	srv := monitor.NewServer()
	sse := machine.NewStreamRecorder(srv.Events(), machine.GenericLevels(3), 0)
	sess := experiments.NewSession()
	sess.AddStream(sse)
	sess.SetServer(srv)

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	watcher, stopWatching := sseClient(t, ts.URL)
	defer stopWatching()
	quitter, disconnect := sseClient(t, ts.URL)
	_ = quitter
	disconnect() // hangs up before the run starts producing

	buildJSONReport(sess, true, "nvm", costmodel.NVMBacked(8))
	if err := sse.Close(); err != nil { // flush the final record to /events
		t.Fatal(err)
	}

	phases := []string{"matmul-wa", "matmul-nonwa", "fft-external", "extsort"}
	marks := map[string]bool{}
	records := map[string]bool{}
	for len(marks) < len(phases) || len(records) < len(phases) {
		line, err := watcher.ReadString('\n')
		if err != nil {
			t.Fatalf("stream ended early (marks %v, records %v): %v", marks, records, err)
		}
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var rec struct {
			Phase string `json:"phase"`
			Final bool   `json:"final"`
			Seq   *int64 `json:"seq"`
		}
		if err := json.Unmarshal([]byte(strings.TrimPrefix(strings.TrimSpace(line), "data: ")), &rec); err != nil {
			t.Fatalf("bad event payload %q: %v", line, err)
		}
		if rec.Seq == nil {
			marks[rec.Phase] = true // MarkPhase broadcast: {"phase":...} only
		} else {
			records[rec.Phase] = true // stream record with counters
		}
	}
	for _, p := range phases {
		if !marks[p] {
			t.Errorf("no phase mark for %q on /events", p)
		}
		if !records[p] {
			t.Errorf("no stream record for %q on /events", p)
		}
	}

	// The disconnected client must be unsubscribed; the watcher stays.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Events().Clients() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("clients = %d after disconnect, want 1", srv.Events().Clients())
		}
		time.Sleep(time.Millisecond)
	}
}
