package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"writeavoid/internal/observ"
)

// runDashboards implements the `wabench dashboards` subcommand:
//
//	wabench dashboards -out DIR          generate + validate + write artifacts
//	wabench dashboards -out DIR -check   verify DIR matches generation (CI gate)
//
// Generation is deterministic over the registered wa_* families, so -check
// against the committed dashboards/ directory fails exactly when someone
// changed the families or the generators without regenerating the goldens.
func runDashboards(args []string) int {
	fs := flag.NewFlagSet("wabench dashboards", flag.ExitOnError)
	out := fs.String("out", "", "directory for the generated artifacts (required)")
	check := fs.Bool("check", false, "write nothing; exit 1 unless -out already matches the generated artifacts")
	fs.Parse(args) //nolint:errcheck
	if *out == "" || fs.NArg() > 0 {
		fmt.Fprintln(os.Stderr, "usage: wabench dashboards -out DIR [-check]")
		return 2
	}

	bundle, err := observ.Build()
	if err != nil {
		fmt.Fprintln(os.Stderr, "wabench dashboards:", err)
		return 1
	}

	if *check {
		drifted := false
		for _, name := range bundle.FileNames() {
			path := filepath.Join(*out, name)
			got, err := os.ReadFile(path)
			switch {
			case err != nil:
				fmt.Fprintf(os.Stderr, "wabench dashboards: %s: %v\n", path, err)
				drifted = true
			case !bytes.Equal(got, bundle.Files[name]):
				fmt.Fprintf(os.Stderr, "wabench dashboards: %s drifted from the generated output; run `wabench dashboards -out %s`\n", path, *out)
				drifted = true
			}
		}
		if drifted {
			return 1
		}
		fmt.Fprintf(os.Stderr, "wabench dashboards: %d artifact(s) in %s match the generators\n", len(bundle.Files), *out)
		return 0
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "wabench dashboards:", err)
		return 1
	}
	for _, name := range bundle.FileNames() {
		if err := os.WriteFile(filepath.Join(*out, name), bundle.Files[name], 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "wabench dashboards:", err)
			return 1
		}
	}
	fmt.Fprintf(os.Stderr, "wabench dashboards: wrote %d artifact(s) to %s\n", len(bundle.Files), *out)
	return 0
}
