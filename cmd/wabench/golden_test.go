package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"writeavoid/internal/costmodel"
	"writeavoid/internal/experiments"
	"writeavoid/internal/machine"
)

// The Session refactor's acceptance pin: the -json phase suite and its
// stream JSONL must be bit-identical to goldens captured from the
// pre-refactor binary (global-hook wiring, `wabench -quick -json -stream
// FILE -stream-every 1000`). Regenerate only for a deliberate counter
// change:
//
//	go run ./cmd/wabench -quick -json \
//	  -stream cmd/wabench/testdata/golden_stream_quick.jsonl -stream-every 1000 \
//	  > cmd/wabench/testdata/golden_report_quick.json
func TestGoldenReportBitIdentical(t *testing.T) {
	var stream bytes.Buffer
	rec := machine.NewStreamRecorder(&stream, machine.GenericLevels(3), 1000)
	sess := experiments.NewSession()
	sess.SetStream(rec)

	rep := buildJSONReport(sess, true, "nvm", costmodel.NVMBacked(8))
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	var doc bytes.Buffer
	enc := json.NewEncoder(&doc)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		t.Fatal(err)
	}

	wantDoc, err := os.ReadFile(filepath.Join("testdata", "golden_report_quick.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(doc.Bytes(), wantDoc) {
		t.Errorf("-json report drifted from pre-refactor golden (%d vs %d bytes)",
			doc.Len(), len(wantDoc))
	}

	wantStream, err := os.ReadFile(filepath.Join("testdata", "golden_stream_quick.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stream.Bytes(), wantStream) {
		t.Errorf("stream JSONL drifted from pre-refactor golden (%d vs %d bytes)",
			stream.Len(), len(wantStream))
	}
}
