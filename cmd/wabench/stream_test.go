package main

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"writeavoid/internal/costmodel"
	"writeavoid/internal/experiments"
	"writeavoid/internal/machine"
)

func decodeStream(t *testing.T, raw []byte) []machine.StreamRecord {
	t.Helper()
	var recs []machine.StreamRecord
	dec := json.NewDecoder(bytes.NewReader(raw))
	for dec.More() {
		var r machine.StreamRecord
		if err := dec.Decode(&r); err != nil {
			t.Fatalf("decode stream: %v", err)
		}
		recs = append(recs, r)
	}
	return recs
}

// The -stream acceptance check: run the counted phase suite with a live
// stream attached, re-parse the emitted JSONL, and require the summed deltas
// to equal the final cumulative record, which equals the post-hoc snapshot —
// counter for counter, nothing sampled or lost.
func TestStreamJSONLRoundTripsExactly(t *testing.T) {
	var buf bytes.Buffer
	stream := machine.NewStreamRecorder(&buf, machine.GenericLevels(3), 1000)
	sess := experiments.NewSession()
	sess.SetStream(stream)

	buildJSONReport(sess, true, "nvm", costmodel.NVMBacked(8))
	if err := stream.Close(); err != nil {
		t.Fatal(err)
	}
	postHoc := stream.Snapshot()

	recs := decodeStream(t, buf.Bytes())
	if len(recs) < 5 {
		t.Fatalf("only %d records; periodic flushing (every=1000) did not kick in", len(recs))
	}
	final := recs[len(recs)-1]
	if !final.Final {
		t.Fatal("last record not marked final")
	}

	sum := recs[0].Delta
	seenPhases := map[string]bool{recs[0].Phase: true}
	var events int64 = recs[0].Events
	for i, r := range recs[1:] {
		if r.Seq != int64(i)+1 {
			t.Fatalf("record %d has seq %d; sequence not dense", i+1, r.Seq)
		}
		sum = sum.Add(r.Delta)
		events += r.Events
		seenPhases[r.Phase] = true
	}
	if !reflect.DeepEqual(sum, final.Cum) {
		t.Fatalf("summed deltas != final cumulative:\nsum = %+v\ncum = %+v", sum, final.Cum)
	}
	if !reflect.DeepEqual(final.Cum, postHoc) {
		t.Fatalf("final cumulative != post-hoc snapshot:\ncum  = %+v\npost = %+v", final.Cum, postHoc)
	}
	if events != final.TotalEvents {
		t.Fatalf("per-record events sum to %d, final totalEvents %d", events, final.TotalEvents)
	}

	for _, phase := range []string{"matmul-wa", "matmul-nonwa", "fft-external", "extsort"} {
		if !seenPhases[phase] {
			t.Fatalf("no stream record labeled %q (got %v)", phase, seenPhases)
		}
	}
	// The report phases are 64x64 matmuls etc. — well past the flush
	// threshold — so slow-memory trajectories are visibly nonzero.
	if final.Cum.Interfaces[0].LoadWords == 0 || final.Cum.Flops == 0 {
		t.Fatal("stream totals empty")
	}
}

// The experiments-package hook streams a whole text section: SetStream, run
// a section, and its mark shows up as the phase label on the wire with the
// section's events behind it.
func TestStreamExperimentsHook(t *testing.T) {
	var buf bytes.Buffer
	stream := machine.NewStreamRecorder(&buf, machine.GenericLevels(3), 0)
	sess := experiments.NewSession()
	sess.SetStream(stream)

	sess.Sec2Report()
	if err := stream.Close(); err != nil {
		t.Fatal(err)
	}

	recs := decodeStream(t, buf.Bytes())
	if len(recs) == 0 {
		t.Fatal("no stream records from Sec2Report")
	}
	var sec2 int64
	for _, r := range recs {
		if r.Phase == "sec2" {
			sec2 += r.Delta.Interfaces[0].LoadWords
		}
	}
	if sec2 == 0 {
		t.Fatal("sec2 phase contributed no load words to the stream")
	}
	if got := recs[len(recs)-1].Cum; !reflect.DeepEqual(got, stream.Snapshot()) {
		t.Fatal("final cumulative record != post-hoc snapshot")
	}
}
