package main

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"writeavoid/internal/costmodel"
	"writeavoid/internal/experiments"
	"writeavoid/internal/machine"
	"writeavoid/internal/monitor"
	"writeavoid/internal/observ"
)

// The dashboards subcommand writes the artifact set, and -check passes on a
// fresh directory, fails on drift or absence — the CI gate's exit codes.
func TestDashboardsWriteAndCheck(t *testing.T) {
	dir := t.TempDir()

	if rc := runDashboards([]string{}); rc != 2 {
		t.Fatalf("missing -out = %d, want 2", rc)
	}
	if rc := runDashboards([]string{"-out", dir, "extra"}); rc != 2 {
		t.Fatalf("positional arg = %d, want 2", rc)
	}

	// -check before anything exists: every artifact is missing.
	if rc := runDashboards([]string{"-out", dir, "-check"}); rc != 1 {
		t.Fatalf("check on empty dir = %d, want 1", rc)
	}

	// run() dispatches the subcommand before flag parsing.
	if rc := run([]string{"dashboards", "-out", dir}); rc != 0 {
		t.Fatalf("write = %d, want 0", rc)
	}
	for _, name := range []string{observ.DashboardFile, observ.RulesFile} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("artifact %s not written: %v", name, err)
		}
	}
	if rc := runDashboards([]string{"-out", dir, "-check"}); rc != 0 {
		t.Fatalf("check on fresh artifacts = %d, want 0", rc)
	}

	// Any byte of drift fails the gate.
	path := filepath.Join(dir, observ.RulesFile)
	content, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(content, []byte("# hand edit\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	if rc := runDashboards([]string{"-out", dir, "-check"}); rc != 1 {
		t.Fatalf("check on drifted artifact = %d, want 1", rc)
	}
}

// The committed dashboards/ goldens pass the same gate the CI job runs.
func TestCommittedDashboardsMatch(t *testing.T) {
	if rc := runDashboards([]string{"-out", filepath.Join("..", "..", "dashboards"), "-check"}); rc != 0 {
		t.Fatal("committed dashboards/ drifted; run `wabench dashboards -out dashboards`")
	}
}

// The serve-mode wiring end to end, without a server: the histogram recorder
// rides the -json suite via the experiments hooks, and its phase histogram
// sums equal the recorder's own cumulative interface counters exactly — the
// acceptance pin over a real workload rather than a synthetic event feed.
func TestJSONSuiteHistogramExactness(t *testing.T) {
	mon := monitor.New(machine.GenericLevels(3), jsonSuiteChecks())
	hists := monitor.NewHistogramRecorder(machine.GenericLevels(3))
	hists.SetFloor("matmul-wa", 64*64)
	sess := experiments.NewSession()
	sess.SetMonitor(mon)
	sess.SetHistograms(hists)
	buildJSONReport(sess, true, "nvm", costmodel.NVMBacked(8))
	hists.Finish()

	byFamily := map[string]monitor.HistogramSnapshot{}
	for _, fh := range hists.Histograms() {
		byFamily[fh.Family] = fh.Snap
	}
	cum := hists.Snapshot()
	var loadW, storeW int64
	for _, ifc := range cum.Interfaces {
		loadW += ifc.LoadWords
		storeW += ifc.StoreWords
	}
	if loadW == 0 || storeW == 0 {
		t.Fatal("recorder saw no traffic; the experiments hook is not attached")
	}
	if got := byFamily["wa_phase_load_words"]; got.Sum != float64(loadW) {
		t.Fatalf("load histogram sum = %g, cumulative counters = %d", got.Sum, loadW)
	}
	if got := byFamily["wa_phase_store_words"]; got.Sum != float64(storeW) {
		t.Fatalf("store histogram sum = %g, cumulative counters = %d", got.Sum, storeW)
	}
	if got := byFamily["wa_phase_load_words"]; got.Count == 0 {
		t.Fatal("no phase observations recorded")
	}
	// The conform() hook feeds the floor-slack distribution for every checked
	// floor (never ceilings); slack is always >= 1 on a conforming run.
	slack := byFamily["wa_phase_floor_slack_ratio"]
	if slack.Count == 0 {
		t.Fatal("no floor-slack observations from the json suite")
	}
	if slack.Sum < float64(slack.Count) {
		t.Fatalf("mean floor slack < 1 on a conforming run: sum %g over %d", slack.Sum, slack.Count)
	}
}

// A histogram-bearing /metrics exposition from the full serve wiring passes
// the validator (the same check a scraper's parse performs).
func TestServeMetricsValidate(t *testing.T) {
	hists := monitor.NewHistogramRecorder(machine.GenericLevels(3))
	sess := experiments.NewSession()
	sess.SetHistograms(hists)
	buildJSONReport(sess, true, "nvm", costmodel.NVMBacked(8))
	hists.Finish()

	srv := monitor.NewServer()
	srv.SetHistograms(hists)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics = %d", rec.Code)
	}
	if _, err := monitor.ValidateExposition(rec.Body.Bytes()); err != nil {
		t.Fatalf("serve /metrics invalid: %v", err)
	}
}
