package main

// The -compare mode: diff two -benchjson reports and gate on regressions.
// Wall time is inherently noisy, so ns/op gets a lenient multiplicative
// threshold; events/op is a simulation artifact and must not drift at all
// beyond float formatting noise — a change there means the engine changed
// which events a workload records, which is an equivalence break, not a
// performance regression.

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
)

// loadBenchReport reads one -benchjson document.
func loadBenchReport(path string) (BenchReport, error) {
	var rep BenchReport
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.Results) == 0 {
		return rep, fmt.Errorf("%s: no results", path)
	}
	return rep, nil
}

// runCompare diffs OLD and NEW reports workload by workload and returns a
// process exit code: 0 when every workload holds the line, 1 on any
// regression (ns/op above nsRatio times the old value, events/op moved by
// more than evEps relative, or a workload that disappeared), 2 on unreadable
// input. Workloads only present in NEW are reported but never fail the gate.
func runCompare(oldPath, newPath string, nsRatio, evEps float64) int {
	oldRep, err := loadBenchReport(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wabench: -compare:", err)
		return 2
	}
	newRep, err := loadBenchReport(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wabench: -compare:", err)
		return 2
	}
	if oldRep.Quick != newRep.Quick {
		fmt.Fprintf(os.Stderr, "wabench: -compare: quick flags differ (old %v, new %v); ns/op is not comparable\n",
			oldRep.Quick, newRep.Quick)
		return 2
	}

	newByName := make(map[string]BenchResult, len(newRep.Results))
	for _, r := range newRep.Results {
		newByName[r.Name] = r
	}
	oldNames := make(map[string]bool, len(oldRep.Results))

	regressions := 0
	fmt.Printf("%-22s %14s %14s %7s  %s\n", "workload", "old ns/op", "new ns/op", "ratio", "events/op")
	for _, o := range oldRep.Results {
		oldNames[o.Name] = true
		n, ok := newByName[o.Name]
		if !ok {
			fmt.Printf("%-22s %14.0f %14s %7s  MISSING in new report\n", o.Name, o.NsPerOp, "-", "-")
			regressions++
			continue
		}
		ratio := math.Inf(1)
		if o.NsPerOp > 0 {
			ratio = n.NsPerOp / o.NsPerOp
		} else if n.NsPerOp == 0 {
			ratio = 1
		}
		verdicts := ""
		if ratio > nsRatio {
			verdicts += fmt.Sprintf("  SLOWER (> %.2fx)", nsRatio)
			regressions++
		}
		evDrift := math.Abs(n.EventsPerOp-o.EventsPerOp) / math.Max(1, math.Abs(o.EventsPerOp))
		evNote := fmt.Sprintf("%.1f -> %.1f", o.EventsPerOp, n.EventsPerOp)
		if evDrift > evEps {
			verdicts += "  EVENTS DRIFTED"
			regressions++
		}
		fmt.Printf("%-22s %14.0f %14.0f %6.2fx  %s%s\n", o.Name, o.NsPerOp, n.NsPerOp, ratio, evNote, verdicts)
	}
	for _, n := range newRep.Results {
		if !oldNames[n.Name] {
			fmt.Printf("%-22s %14s %14.0f %7s  new workload (not gated)\n", n.Name, "-", n.NsPerOp, "-")
		}
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "wabench: -compare: %d regression(s)\n", regressions)
		return 1
	}
	fmt.Println("wabench: -compare: no regressions")
	return 0
}
