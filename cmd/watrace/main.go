// Command watrace records memory-access traces of the paper's matrix
// multiplication instruction orders and replays traces through configurable
// cache simulations.
//
// Record a trace:
//
//	watrace record -out mm.trace -order wa -m 128 -n 128 -l 128 -blocks 32,8
//	watrace record -out co.trace -order co -m 128 -n 128 -l 128 -base 8
//
// Simulate a trace (any policy, or Belady's offline OPT):
//
//	watrace sim -in mm.trace -size 65536 -line 64 -assoc 16 -policy clock3
//	watrace sim -in mm.trace -size 65536 -line 64 -policy opt
//	watrace sim -in mm.trace -size 65536 -line 64 -policy lru -fullassoc
//
// sim -stream writes periodic cache statistics as JSON lines ("-" = stdout)
// while the replay runs — one record per -stream-every accesses plus a final
// cumulative record, each pairing the delta stats with the running totals.
// OPT is offline (its answers need the whole trace), so -stream emits only
// the final record there.
//
// sim -serve starts a live observability HTTP server for the duration of the
// replay: /metrics exposes the simulator's cumulative stats as Prometheus
// text, /snapshot as JSON, and /events streams the same records a -stream
// file receives as Server-Sent Events. Stats reach the server as copies at
// each -stream-every emission, so scrapes never race the replay.
//
// sim -trace writes the replay as Chrome trace-event JSON: one span over the
// whole access sequence plus counter tracks of the cumulative hit, fill and
// write-back trajectories (ts = access index). Open it in Perfetto or
// chrome://tracing.
//
// Validate any Chrome trace produced by this repository (wabench -trace or
// sim -trace):
//
//	watrace checktrace -in trace.json -min-counters 2 -min-spans 1
//
// The reported VictimsM count (modified-line evictions plus the final dirty
// flush) is the number of cache lines written back to memory — the paper's
// LLC_VICTIMS.M.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"writeavoid/internal/access"
	"writeavoid/internal/cache"
	"writeavoid/internal/core"
	"writeavoid/internal/monitor"
	"writeavoid/internal/profile"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "sim":
		sim(os.Args[2:])
	case "checktrace":
		checktrace(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: watrace record|sim|checktrace [flags]   (see package comment)")
	os.Exit(2)
}

// checktrace validates a Chrome trace-event JSON file (as written by
// `wabench -trace` or `watrace sim -trace`) and prints its structural
// summary; it exits nonzero on any schema violation, so CI can gate on it.
func checktrace(args []string) {
	fs := flag.NewFlagSet("checktrace", flag.ExitOnError)
	in := fs.String("in", "", "trace JSON file (required)")
	minCounters := fs.Int("min-counters", 0, "fail unless at least this many counter tracks")
	minSpans := fs.Int("min-spans", 0, "fail unless at least this many matched spans")
	fs.Parse(args) //nolint:errcheck
	if *in == "" {
		fmt.Fprintln(os.Stderr, "watrace checktrace: -in is required")
		os.Exit(2)
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		fatal(err)
	}
	info, err := profile.ValidateTraceEvent(data)
	if err != nil {
		fatal(err)
	}
	if len(info.CounterTracks) < *minCounters {
		fatal(fmt.Errorf("trace has %d counter tracks, want >= %d", len(info.CounterTracks), *minCounters))
	}
	if info.Spans < *minSpans {
		fatal(fmt.Errorf("trace has %d spans, want >= %d", info.Spans, *minSpans))
	}
	fmt.Printf("%s: %d events, %d spans, %d counter tracks, %d pids, %d threads\n",
		*in, info.Events, info.Spans, len(info.CounterTracks), len(info.Pids), info.Tids)
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	out := fs.String("out", "", "output trace file (required)")
	order := fs.String("order", "wa", "instruction order: wa | multilevel | tuned | co")
	m := fs.Int("m", 128, "C rows")
	n := fs.Int("n", 128, "contraction dimension")
	l := fs.Int("l", 128, "C cols")
	blocks := fs.String("blocks", "32,8", "comma-separated block sizes, coarsest first (wa/multilevel/tuned)")
	base := fs.Int("base", 8, "base-case threshold (co)")
	line := fs.Int("line", 64, "address-space line alignment")
	fs.Parse(args) //nolint:errcheck

	if *out == "" {
		fmt.Fprintln(os.Stderr, "watrace record: -out is required")
		os.Exit(2)
	}
	var rec access.Recorder
	switch *order {
	case "co":
		core.NewCOMatMulTrace(*m, *n, *l, *base, *line).Run(&rec)
	case "wa", "multilevel", "tuned":
		bs, err := parseBlocks(*blocks)
		if err != nil {
			fmt.Fprintln(os.Stderr, "watrace record:", err)
			os.Exit(2)
		}
		levels := make([]core.TraceLevel, len(bs))
		for i, b := range bs {
			switch *order {
			case "wa": // Fig 4b: contraction inner only at the top
				levels[i] = core.TraceLevel{Block: b, ContractionInner: i == 0}
			case "multilevel": // Fig 4a: contraction inner everywhere
				levels[i] = core.TraceLevel{Block: b, ContractionInner: true}
			case "tuned": // write-oblivious: contraction outer at the top
				levels[i] = core.TraceLevel{Block: b, ContractionInner: i != 0}
			}
		}
		core.NewMatMulTrace(*m, *n, *l, *line, levels...).Run(&rec)
	default:
		fmt.Fprintf(os.Stderr, "watrace record: unknown order %q\n", *order)
		os.Exit(2)
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := access.WriteTrace(f, rec.Ops); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d accesses to %s\n", len(rec.Ops), *out)
}

func sim(args []string) {
	// cache.New treats bad geometry as a programming error and panics;
	// for the CLI it is user input, so report it politely.
	defer func() {
		if e := recover(); e != nil {
			fmt.Fprintln(os.Stderr, "watrace:", e)
			os.Exit(2)
		}
	}()
	fs := flag.NewFlagSet("sim", flag.ExitOnError)
	in := fs.String("in", "", "input trace file (required)")
	size := fs.Int("size", 128*1024, "cache size in bytes")
	line := fs.Int("line", 64, "line size in bytes")
	assoc := fs.Int("assoc", 16, "associativity (ignored with -fullassoc)")
	policy := fs.String("policy", "lru", "lru | clock3 | fifo | plru | random | opt")
	full := fs.Bool("fullassoc", false, "fully-associative (lru only, O(1))")
	wt := fs.Bool("writethrough", false, "write-through / no-write-allocate mode")
	streamTo := fs.String("stream", "", "stream periodic stats as JSON lines to this file (- = stdout)")
	streamEvery := fs.Int64("stream-every", 1<<20, "accesses between periodic stream records")
	traceTo := fs.String("trace", "", "write a Chrome trace-event JSON timeline of the replay to this file")
	serveAddr := fs.String("serve", "", "serve live observability HTTP on this address during the replay (:0 = ephemeral)")
	fs.Parse(args) //nolint:errcheck

	if *in == "" {
		fmt.Fprintln(os.Stderr, "watrace sim: -in is required")
		os.Exit(2)
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	defer f.Close()

	// -serve exposes the replay live: /metrics and /snapshot carry the
	// simulator's cumulative stats (pushed as copies at every periodic
	// emission, so HTTP readers never touch the simulator itself) and
	// /events streams the same JSON records a -stream file receives.
	var srv *monitor.Server
	if *serveAddr != "" {
		srv = monitor.NewServer()
		addr, err := srv.Start(*serveAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "watrace: serving observability on http://%s/\n", addr)
		defer srv.Close()
	}

	var streamW io.Writer
	if *streamTo != "" {
		streamW = os.Stdout
		if *streamTo != "-" {
			sf, err := os.Create(*streamTo)
			if err != nil {
				fatal(err)
			}
			defer sf.Close()
			streamW = sf
		}
	}
	if srv != nil {
		if streamW != nil {
			streamW = io.MultiWriter(streamW, srv.Events())
		} else {
			streamW = srv.Events()
		}
	}
	var ss *statsStream
	if streamW != nil {
		ss = newStatsStream(streamW, *streamEvery)
		if srv != nil {
			name := *policy
			ss.publish = func(st cache.Stats) { srv.PublishCacheStats(name, st) }
		}
	}

	tx := newTraceExport(*traceTo, *streamEvery)

	var st cache.Stats
	switch {
	case *policy == "opt":
		ops, err := access.ReadTrace(f)
		if err != nil {
			fatal(err)
		}
		st = cache.SimulateOPT(ops, *size, *line)
		if tx != nil {
			tx.n = int64(len(ops))
		}
	case *full:
		c := cache.NewFALRU(*size, *line)
		if _, err := access.StreamTrace(f, tx.tap(c, ss.wrap(c))); err != nil {
			fatal(err)
		}
		c.FlushDirty()
		st = c.Stats()
	default:
		kind, err := parsePolicy(*policy)
		if err != nil {
			fatal(err)
		}
		c := cache.New(cache.Config{SizeBytes: *size, LineBytes: *line, Assoc: *assoc, Policy: kind, Seed: 1, WriteThrough: *wt})
		if _, err := access.StreamTrace(f, tx.tap(c, ss.wrap(c))); err != nil {
			fatal(err)
		}
		c.FlushDirty()
		st = c.Stats()
	}
	if err := ss.close(st); err != nil {
		fatal(err)
	}
	if err := tx.close(*in, *policy, st); err != nil {
		fatal(err)
	}
	fmt.Printf("accesses   %12d (%d reads, %d writes)\n", st.Accesses, st.Reads, st.Writes)
	fmt.Printf("hits       %12d (%.2f%%)\n", st.Hits, 100*float64(st.Hits)/float64(max(st.Accesses, 1)))
	fmt.Printf("fills.E    %12d\n", st.FillsE)
	fmt.Printf("victims.M  %12d (write-backs, incl. %d flushed)\n", st.VictimsM, st.Flushed)
	fmt.Printf("victims.E  %12d\n", st.VictimsE)
	if st.WriteThroughs > 0 {
		fmt.Printf("writethru  %12d (total memory writes %d)\n", st.WriteThroughs, st.MemoryWrites())
	}
}

// StatsRecord is one JSON line of a sim -stream: the delta stats of the
// accesses since the previous record next to the cumulative totals. Summing
// every delta reproduces the final record's cumulative stats exactly.
type StatsRecord struct {
	Seq   int64       `json:"seq"`
	Final bool        `json:"final,omitempty"`
	Delta cache.Stats `json:"delta"`
	Cum   cache.Stats `json:"cum"`
}

// statsStream emits StatsRecords during a trace replay. A nil *statsStream
// is inert: wrap passes the simulator's sink through and close does nothing,
// so the replay paths need no branching.
type statsStream struct {
	enc     *json.Encoder
	seq     int64
	prev    cache.Stats
	every   int64
	pending int64
	// publish, when set, additionally pushes each record's cumulative stats
	// to the observability server (a copy — the HTTP side never reads the
	// live simulator).
	publish func(cache.Stats)
}

func newStatsStream(w io.Writer, every int64) *statsStream {
	return &statsStream{enc: json.NewEncoder(w), every: every}
}

func (s *statsStream) wrap(c cache.Simulator) access.Sink {
	if s == nil {
		return access.SinkFunc(c.Access)
	}
	return access.SinkFunc(func(addr uint64, write bool) {
		c.Access(addr, write)
		s.pending++
		if s.every > 0 && s.pending >= s.every {
			if err := s.emit(c.Stats(), false); err != nil {
				fatal(err)
			}
		}
	})
}

func (s *statsStream) emit(cum cache.Stats, final bool) error {
	rec := StatsRecord{Seq: s.seq, Final: final, Delta: cum.Sub(s.prev), Cum: cum}
	if err := s.enc.Encode(rec); err != nil {
		return err
	}
	if s.publish != nil {
		s.publish(cum)
	}
	s.seq++
	s.prev = cum
	s.pending = 0
	return nil
}

// close emits the final cumulative record (post-flush totals).
func (s *statsStream) close(final cache.Stats) error {
	if s == nil {
		return nil
	}
	return s.emit(final, true)
}

// traceExport renders a replay as a Chrome trace: one "replay" span over the
// whole access sequence (ts = access index, in µs) plus counter tracks of
// the cumulative hit and write-back trajectories sampled every `every`
// accesses. A nil *traceExport is inert like a nil *statsStream.
type traceExport struct {
	path    string
	every   int64
	n       int64
	samples []traceSample
}

type traceSample struct {
	n  int64
	st cache.Stats
}

func newTraceExport(path string, every int64) *traceExport {
	if path == "" {
		return nil
	}
	if every <= 0 {
		every = 1 << 20
	}
	return &traceExport{path: path, every: every}
}

func (t *traceExport) tap(c cache.Simulator, sink access.Sink) access.Sink {
	if t == nil {
		return sink
	}
	return access.SinkFunc(func(addr uint64, write bool) {
		sink.Access(addr, write)
		t.n++
		if t.n%t.every == 0 {
			t.samples = append(t.samples, traceSample{n: t.n, st: c.Stats()})
		}
	})
}

func (t *traceExport) close(in, policy string, final cache.Stats) error {
	if t == nil {
		return nil
	}
	b := profile.NewTraceBuilder()
	b.AddProcessName(0, "watrace sim")
	b.AddThreadName(0, 0, "replay")
	end := float64(t.n)
	if end == 0 {
		end = 1
	}
	b.AddSpan(0, 0, fmt.Sprintf("%s %s", policy, in), 0, end, map[string]any{
		"accesses": final.Accesses,
		"hits":     final.Hits,
		"victimsM": final.VictimsM,
	})
	for _, s := range append(t.samples, traceSample{n: t.n, st: final}) {
		ts := float64(s.n)
		b.AddCounter(0, "hits", ts, map[string]any{"hits": s.st.Hits})
		b.AddCounter(0, "writebacks", ts, map[string]any{"victimsM": s.st.VictimsM})
		b.AddCounter(0, "fills", ts, map[string]any{"fillsE": s.st.FillsE})
	}
	f, err := os.Create(t.path)
	if err != nil {
		return err
	}
	if err := b.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func parseBlocks(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	prev := 1 << 30
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad block size %q", p)
		}
		if v > prev {
			return nil, fmt.Errorf("block sizes must be coarsest first: %s", s)
		}
		prev = v
		out = append(out, v)
	}
	return out, nil
}

func parsePolicy(s string) (cache.PolicyKind, error) {
	switch s {
	case "lru":
		return cache.PolicyLRU, nil
	case "clock3":
		return cache.PolicyClock3, nil
	case "fifo":
		return cache.PolicyFIFO, nil
	case "plru":
		return cache.PolicyPLRU, nil
	case "random":
		return cache.PolicyRandom, nil
	}
	return 0, fmt.Errorf("unknown policy %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "watrace:", err)
	os.Exit(1)
}
